// Incremental repair drivers: BFS / SSSP / CC over a delta overlay.
//
// The async label-correction engine is naturally incremental — a monotone
// fixed point can be repaired from the mutated endpoints instead of being
// recomputed from scratch. These drivers take the prior labels and the
// delta batch just applied to the overlay behind an overlay_view and seed
// the SAME visitors (bfs_visitor / sssp_visitor / cc_visitor, unchanged)
// through the same batched-outbox mailbox seam:
//
//   * Edge inserts are pure monotone improvements: for each inserted
//     (u, v, w) with a finite prior label at u, seed visitor{v, u,
//     label(u) + step} and let relaxation propagate. Nothing is
//     invalidated.
//   * Edge deletes can strand labels. A deleted (u, v) that was v's
//     shortest-path-tree edge (prior parent[v] == u) invalidates v and,
//     transitively, the tree cone below it: descending via post-delta
//     out-edges, x belongs to the cone of v when parent[x] == v and
//     dist[x] == dist[v] + step — the classic tree-cone test. The cone is
//     reset to infinity, then re-seeded from its frontier boundary: every
//     in-edge (a, x) from a finite (outside) vertex a contributes seed
//     {x, a, dist[a] + step}. Labels outside the cone stay achievable
//     (their tree paths use no deleted edge, and deletions only lengthen
//     paths), so monotone relaxation from the boundary plus the insert
//     seeds converges to exactly the fixed point of the new epoch — the
//     property the dynamic differential battery asserts bit-for-bit.
//   * CC deletes can split a component, which min-label propagation cannot
//     repair in place (labels would need to rise). Every component touched
//     by a plausible delete is reset wholesale and re-seeded Algorithm-3
//     style (each reset vertex with its own id) plus boundary and insert
//     seeds. The symmetric-batch precondition of CC carries over: deltas
//     must mutate both directions (delta_batch::insert_undirected).
//
// Deletes need the reverse view for the boundary scan — PR 7's
// ensure_reverse / .agt.rev companions; submits throw std::invalid_argument
// on a delete batch over a view without has_reverse(). Insert-only batches
// run on any view.
//
// Accounting (surfaced through incremental_extra, the
// incremental.reseeded_vertices / incremental.repair_visits counters, and
// the overlay.* gauges): `affected` counts the invalidated cone plus
// distinct insert-seed targets outside it; `reseeded_vertices` counts
// distinct vertices receiving at least one seed, a subset of affected by
// construction — check_bench_json.py enforces reseeded <= affected <= n on
// every `incremental` report section. bench/ext_incremental gates
// repair_visits against the full-recompute visit count.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <tuple>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/async_bfs.hpp"
#include "core/async_cc.hpp"
#include "core/async_sssp.hpp"
#include "core/traversal_result.hpp"
#include "graph/delta_overlay.hpp"
#include "graph/types.hpp"
#include "service/engine.hpp"

namespace asyncgt {

/// Repair accounting of one incremental job. affected and
/// reseeded_vertices are written synchronously before the submit returns;
/// repair_visits is written by the completing worker before the result is
/// delivered (reading it is ordered by job::get()/wait()).
struct incremental_extra {
  std::uint64_t affected = 0;           ///< cone + insert-touched vertices
  std::uint64_t reseeded_vertices = 0;  ///< distinct seed targets
  std::uint64_t repair_visits = 0;      ///< visitor executions of the repair
};

namespace incr_detail {

// mark bits: kInCone = invalidated (or reset component), kSeeded = received
// at least one seed, kInsertTouched = insert-seed target. affected =
// kInCone | kInsertTouched; every seed target sets one of those two, which
// makes reseeded <= affected structural rather than asserted.
inline constexpr std::uint8_t kInCone = 1;
inline constexpr std::uint8_t kSeeded = 2;
inline constexpr std::uint8_t kInsertTouched = 4;

template <typename VertexId>
struct repair_plan {
  /// (target, source-or-id, label value). Distance repairs use all three;
  /// CC uses the first two (target, candidate component id).
  std::vector<std::tuple<VertexId, VertexId, dist_t>> seeds;
  std::uint64_t affected = 0;
  std::uint64_t reseeded = 0;
};

template <typename VertexId>
void finish_counts(const std::vector<std::uint8_t>& mark,
                   repair_plan<VertexId>& plan) {
  for (const std::uint8_t m : mark) {
    if ((m & (kInCone | kInsertTouched)) != 0) ++plan.affected;
    if ((m & kSeeded) != 0) ++plan.reseeded;
  }
}

/// Shared BFS/SSSP planner. Mutates dist/parent in place (cone reset); the
/// caller then moves them into the job state. UnitWeights selects the BFS
/// step (always 1) vs the SSSP step (edge weight).
template <bool UnitWeights, typename View, typename VertexId>
repair_plan<VertexId> plan_distance_repair(
    const View& g, const delta_batch<VertexId>& delta,
    std::vector<dist_t>& dist, std::vector<VertexId>& parent) {
  const std::uint64_t n = g.num_vertices();
  std::vector<std::uint8_t> mark(n, 0);
  std::vector<VertexId> cone;  // worklist doubling as the final cone list

  // Cone roots: deleted shortest-path-tree edges. The start vertex is its
  // own parent, so it can only match on a (self, self) loop — excluded.
  for (const auto& [u, v] : delta.deletes) {
    if (u >= n || v >= n || u == v) continue;
    if (parent[v] != u) continue;
    if (dist[v] == infinite_distance<dist_t>) continue;
    if ((mark[v] & kInCone) == 0) {
      mark[v] |= kInCone;
      cone.push_back(v);
    }
  }

  // Tree-cone descent over post-delta out-edges and the OLD labels. A
  // child whose own tree edge was also deleted is not reachable here, but
  // it is a cone root in its own right from the loop above.
  for (std::size_t i = 0; i < cone.size(); ++i) {
    const VertexId v = cone[i];
    const dist_t dv = dist[v];
    g.for_each_out_edge(v, [&](VertexId x, weight_t w) {
      if ((mark[x] & kInCone) != 0) return;
      if (parent[x] != v) return;
      if (dist[x] == infinite_distance<dist_t>) return;
      const dist_t step = UnitWeights ? 1 : static_cast<dist_t>(w);
      if (dist[x] != dv + step) return;
      mark[x] |= kInCone;
      cone.push_back(x);
    });
  }

  for (const VertexId x : cone) {
    dist[x] = infinite_distance<dist_t>;
    parent[x] = invalid_vertex<VertexId>;
  }

  repair_plan<VertexId> plan;
  // Boundary reseed: after the reset, a finite in-neighbour is by
  // definition outside the cone and its label is still achievable.
  for (const VertexId x : cone) {
    g.for_each_in_edge(x, [&](VertexId a, weight_t w) {
      if (dist[a] == infinite_distance<dist_t>) return;
      const dist_t step = UnitWeights ? 1 : static_cast<dist_t>(w);
      plan.seeds.emplace_back(x, a, dist[a] + step);
      mark[x] |= kSeeded;
    });
  }
  // Insert seeds: monotone re-relaxation from each live insert source.
  // Weighted repairs must seed with the pair's LIVE weight, not the
  // batch's listed one: set semantics turn a re-insert of a live pair
  // into a no-op, so a smaller listed weight would seed a distance the
  // actual edge set cannot achieve (and relaxation would happily keep).
  for (const auto& e : delta.inserts) {
    if (e.src >= n || e.dst >= n) continue;
    if (dist[e.src] == infinite_distance<dist_t>) continue;
    dist_t step = 1;
    if (!UnitWeights) {
      dist_t live = infinite_distance<dist_t>;
      g.for_each_out_edge(e.src, [&](VertexId x, weight_t w) {
        if (x == e.dst) live = std::min(live, static_cast<dist_t>(w));
      });
      if (live == infinite_distance<dist_t>) continue;  // out-of-range guard
      step = live;
    }
    plan.seeds.emplace_back(e.dst, e.src, dist[e.src] + step);
    mark[e.dst] |= kSeeded | kInsertTouched;
  }
  finish_counts(mark, plan);
  return plan;
}

/// CC planner: resets every component a plausible delete touches (min-label
/// propagation cannot raise labels in place), then seeds Algorithm-3 style.
/// Mutates comp in place.
template <typename View, typename VertexId>
repair_plan<VertexId> plan_cc_repair(const View& g,
                                     const delta_batch<VertexId>& delta,
                                     std::vector<VertexId>& comp) {
  const std::uint64_t n = g.num_vertices();
  std::vector<std::uint8_t> mark(n, 0);
  repair_plan<VertexId> plan;

  // A real prior edge always joined vertices of one component; a delete
  // whose endpoints disagree was a no-op on an absent pair. (A no-op
  // delete of an absent same-component pair resets conservatively —
  // harmless, the repair reconverges to the identical labels.)
  std::unordered_set<VertexId> dead;
  for (const auto& [u, v] : delta.deletes) {
    if (u >= n || v >= n) continue;
    if (comp[u] == invalid_vertex<VertexId>) continue;
    if (comp[u] != comp[v]) continue;
    dead.insert(comp[u]);
  }

  std::vector<VertexId> reset;
  if (!dead.empty()) {
    for (std::uint64_t x = 0; x < n; ++x) {
      if (dead.count(comp[x]) != 0) {
        mark[x] |= kInCone;
        reset.push_back(static_cast<VertexId>(x));
      }
    }
    for (const VertexId x : reset) comp[x] = invalid_vertex<VertexId>;
  }

  // Self seeds (each reset vertex restarts the min-id race with its own
  // id), then boundary seeds from surviving neighbours. In a symmetric
  // graph only freshly inserted edges can cross the reset frontier, but
  // scanning in-edges keeps the repair honest if the prior labels were
  // stale.
  for (const VertexId x : reset) {
    plan.seeds.emplace_back(x, x, 0);
    mark[x] |= kSeeded;
    g.for_each_in_edge(x, [&](VertexId a, weight_t) {
      if (comp[a] == invalid_vertex<VertexId>) return;
      plan.seeds.emplace_back(x, comp[a], 0);
    });
  }
  for (const auto& e : delta.inserts) {
    if (e.src >= n || e.dst >= n) continue;
    if (comp[e.src] == invalid_vertex<VertexId>) continue;
    plan.seeds.emplace_back(e.dst, comp[e.src], 0);
    mark[e.dst] |= kSeeded | kInsertTouched;
  }
  finish_counts(mark, plan);
  return plan;
}

/// Job state that owns its pinned view: the algorithm states keep a raw
/// `g` pointer, and the job outlives the submit call, so the view lives on
/// the heap next to the state (stable across the state's move into the
/// typed job).
template <typename Graph, typename Base>
struct owning_state : Base {
  std::shared_ptr<const overlay_view<Graph>> view;
  owning_state(std::shared_ptr<const overlay_view<Graph>> v,
               std::size_t threads)
      : Base(*v, threads), view(std::move(v)) {}
};

template <typename Graph, typename VertexId>
void require_reverse_for_deletes(const overlay_view<Graph>& g,
                                 const delta_batch<VertexId>& delta,
                                 const char* what) {
  if (!delta.deletes.empty() && !g.has_reverse()) {
    throw std::invalid_argument(
        std::string(what) +
        ": delete repair needs a reverse view (build with ensure_reverse / "
        ".agt.rev companion)");
  }
}

template <typename Graph>
void publish_overlay_gauges(telemetry::metrics_registry* metrics,
                            const overlay_view<Graph>& g,
                            std::uint64_t reseeded) {
  if (metrics == nullptr) return;
  metrics->get_counter("incremental.reseeded_vertices").add(0, reseeded);
  const overlay_counters oc = g.overlay().counters();
  metrics->get_gauge("overlay.live_inserts")
      .set(static_cast<std::int64_t>(oc.live_inserts));
  metrics->get_gauge("overlay.live_deletes")
      .set(static_cast<std::int64_t>(oc.live_deletes));
  metrics->get_gauge("overlay.patched_pairs")
      .set(static_cast<std::int64_t>(oc.patched_pairs));
  metrics->get_gauge("overlay.epoch")
      .record_max(static_cast<std::int64_t>(oc.epoch));
}

}  // namespace incr_detail

/// Repairs a prior BFS fixed point to the view's pinned epoch. See the
/// header comment for the algorithm and docs/dynamic_graphs.md for the
/// lifecycle. `prior` must be the full-recompute (or previously repaired)
/// result over the pre-delta edge set; it is consumed.
template <typename Graph>
job<bfs_result<typename Graph::vertex_id>> engine::submit_incremental_bfs(
    const overlay_view<Graph>& g,
    const delta_batch<typename Graph::vertex_id>& delta,
    bfs_result<typename Graph::vertex_id> prior, incremental_extra* extra,
    std::optional<traversal_options> opts) {
  using V = typename Graph::vertex_id;
  using view_t = overlay_view<Graph>;
  using state_t = incr_detail::owning_state<Graph, bfs_state<view_t>>;
  const std::uint64_t n = g.num_vertices();
  if (prior.level.size() != n || prior.parent.size() != n) {
    throw std::invalid_argument(
        "submit_incremental_bfs: prior labels sized for a different graph");
  }
  incr_detail::require_reverse_for_deletes(g, delta,
                                           "submit_incremental_bfs");
  telemetry::metrics_registry* metrics = resolve_metrics(opts);

  auto plan = incr_detail::plan_distance_repair<true>(g, delta, prior.level,
                                                      prior.parent);
  if (extra != nullptr) {
    extra->affected = plan.affected;
    extra->reseeded_vertices = plan.reseeded;
    extra->repair_visits = 0;
  }
  incr_detail::publish_overlay_gauges(metrics, g, plan.reseeded);

  auto view = std::make_shared<const view_t>(g);
  state_t state(view, resolve_threads(opts));
  state.level = std::move(prior.level);
  state.parent = std::move(prior.parent);

  auto tj = make_typed_job<bfs_visitor<V>>(
      opts, std::move(state),
      [metrics, extra](state_t& s, queue_run_stats stats) {
        if (extra != nullptr) extra->repair_visits = stats.visits;
        if (metrics != nullptr) {
          metrics->get_counter("incremental.repair_visits")
              .add(0, stats.visits);
        }
        bfs_result<V> out;
        out.level = std::move(s.level);
        out.parent = std::move(s.parent);
        out.stats = std::move(stats);
        out.updates = s.updates.total();
        if (metrics != nullptr) out.work().record(*metrics, "incremental_bfs");
        return out;
      },
      "incremental_bfs");
  tj->scope->delta_epoch = g.epoch();
  for (const auto& [x, src, d] : plan.seeds) {
    tj->queue.push(bfs_visitor<V>{x, src, d});
  }
  return start_job(tj, [this](auto& jq, auto& jstate, auto done) {
    jq.run_async(pool_, jstate, std::move(done));
  });
}

/// Repairs a prior SSSP fixed point to the view's pinned epoch; see
/// submit_incremental_bfs.
template <typename Graph>
job<sssp_result<typename Graph::vertex_id>> engine::submit_incremental_sssp(
    const overlay_view<Graph>& g,
    const delta_batch<typename Graph::vertex_id>& delta,
    sssp_result<typename Graph::vertex_id> prior, incremental_extra* extra,
    std::optional<traversal_options> opts) {
  using V = typename Graph::vertex_id;
  using view_t = overlay_view<Graph>;
  using state_t = incr_detail::owning_state<Graph, sssp_state<view_t>>;
  const std::uint64_t n = g.num_vertices();
  if (prior.dist.size() != n || prior.parent.size() != n) {
    throw std::invalid_argument(
        "submit_incremental_sssp: prior labels sized for a different graph");
  }
  incr_detail::require_reverse_for_deletes(g, delta,
                                           "submit_incremental_sssp");
  telemetry::metrics_registry* metrics = resolve_metrics(opts);

  auto plan = incr_detail::plan_distance_repair<false>(g, delta, prior.dist,
                                                       prior.parent);
  if (extra != nullptr) {
    extra->affected = plan.affected;
    extra->reseeded_vertices = plan.reseeded;
    extra->repair_visits = 0;
  }
  incr_detail::publish_overlay_gauges(metrics, g, plan.reseeded);

  auto view = std::make_shared<const view_t>(g);
  state_t state(view, resolve_threads(opts));
  state.dist = std::move(prior.dist);
  state.parent = std::move(prior.parent);

  auto tj = make_typed_job<sssp_visitor<V>>(
      opts, std::move(state),
      [metrics, extra](state_t& s, queue_run_stats stats) {
        if (extra != nullptr) extra->repair_visits = stats.visits;
        if (metrics != nullptr) {
          metrics->get_counter("incremental.repair_visits")
              .add(0, stats.visits);
        }
        sssp_result<V> out;
        out.dist = std::move(s.dist);
        out.parent = std::move(s.parent);
        out.stats = std::move(stats);
        out.updates = s.updates.total();
        if (metrics != nullptr) {
          out.work().record(*metrics, "incremental_sssp");
        }
        return out;
      },
      "incremental_sssp");
  tj->scope->delta_epoch = g.epoch();
  for (const auto& [x, src, d] : plan.seeds) {
    tj->queue.push(sssp_visitor<V>{x, src, d});
  }
  return start_job(tj, [this](auto& jq, auto& jstate, auto done) {
    jq.run_async(pool_, jstate, std::move(done));
  });
}

/// Repairs a prior CC fixed point to the view's pinned epoch. The batch
/// must be symmetric (both directions of every mutation —
/// delta_batch::insert_undirected / erase_undirected), matching CC's
/// symmetric-graph precondition.
template <typename Graph>
job<cc_result<typename Graph::vertex_id>> engine::submit_incremental_cc(
    const overlay_view<Graph>& g,
    const delta_batch<typename Graph::vertex_id>& delta,
    cc_result<typename Graph::vertex_id> prior, incremental_extra* extra,
    std::optional<traversal_options> opts) {
  using V = typename Graph::vertex_id;
  using view_t = overlay_view<Graph>;
  using state_t = incr_detail::owning_state<Graph, cc_state<view_t>>;
  const std::uint64_t n = g.num_vertices();
  if (prior.component.size() != n) {
    throw std::invalid_argument(
        "submit_incremental_cc: prior labels sized for a different graph");
  }
  incr_detail::require_reverse_for_deletes(g, delta, "submit_incremental_cc");
  telemetry::metrics_registry* metrics = resolve_metrics(opts);

  auto plan = incr_detail::plan_cc_repair(g, delta, prior.component);
  if (extra != nullptr) {
    extra->affected = plan.affected;
    extra->reseeded_vertices = plan.reseeded;
    extra->repair_visits = 0;
  }
  incr_detail::publish_overlay_gauges(metrics, g, plan.reseeded);

  auto view = std::make_shared<const view_t>(g);
  state_t state(view, resolve_threads(opts));
  state.ccid = std::move(prior.component);

  auto tj = make_typed_job<cc_visitor<V>>(
      opts, std::move(state),
      [metrics, extra](state_t& s, queue_run_stats stats) {
        if (extra != nullptr) extra->repair_visits = stats.visits;
        if (metrics != nullptr) {
          metrics->get_counter("incremental.repair_visits")
              .add(0, stats.visits);
        }
        cc_result<V> out;
        out.component = std::move(s.ccid);
        out.stats = std::move(stats);
        out.updates = s.updates.total();
        if (metrics != nullptr) out.work().record(*metrics, "incremental_cc");
        return out;
      },
      "incremental_cc");
  tj->scope->delta_epoch = g.epoch();
  for (const auto& [x, id, unused] : plan.seeds) {
    (void)unused;
    tj->queue.push(cc_visitor<V>{x, id});
  }
  return start_job(tj, [this](auto& jq, auto& jstate, auto done) {
    jq.run_async(pool_, jstate, std::move(done));
  });
}

// ---- One-shot wrappers over the process-local engine (submit + get) ----

template <typename Graph>
bfs_result<typename Graph::vertex_id> incremental_bfs(
    const overlay_view<Graph>& g,
    const delta_batch<typename Graph::vertex_id>& delta,
    bfs_result<typename Graph::vertex_id> prior,
    incremental_extra* extra = nullptr, traversal_options opts = {}) {
  return engine::process_default()
      .submit_incremental_bfs(g, delta, std::move(prior), extra,
                              std::move(opts))
      .get();
}

template <typename Graph>
sssp_result<typename Graph::vertex_id> incremental_sssp(
    const overlay_view<Graph>& g,
    const delta_batch<typename Graph::vertex_id>& delta,
    sssp_result<typename Graph::vertex_id> prior,
    incremental_extra* extra = nullptr, traversal_options opts = {}) {
  return engine::process_default()
      .submit_incremental_sssp(g, delta, std::move(prior), extra,
                               std::move(opts))
      .get();
}

template <typename Graph>
cc_result<typename Graph::vertex_id> incremental_cc(
    const overlay_view<Graph>& g,
    const delta_batch<typename Graph::vertex_id>& delta,
    cc_result<typename Graph::vertex_id> prior,
    incremental_extra* extra = nullptr, traversal_options opts = {}) {
  return engine::process_default()
      .submit_incremental_cc(g, delta, std::move(prior), extra,
                             std::move(opts))
      .get();
}

}  // namespace asyncgt
