// Structural metrics built on the asynchronous traversals.
//
// The paper's §I-B claims — "small diameter" and "giant connected
// components" — are verified quantitatively with these helpers:
//
//   * estimate_diameter — the classic double-sweep lower bound: BFS from a
//     seed, re-BFS from the farthest vertex found; the second eccentricity
//     lower-bounds the diameter and is exact on trees. Repeated sweeps
//     tighten the bound.
//   * eccentricity — exact eccentricity of one vertex (max finite level).
//   * average_path_length_sampled — mean hop distance over sampled sources,
//     restricted to reachable pairs.
//
// All run over any GraphStorage and therefore work semi-externally too.
#pragma once

#include <cstdint>
#include <vector>

#include "core/async_bfs.hpp"
#include "util/rng.hpp"

namespace asyncgt {

template <typename Graph>
dist_t eccentricity(const Graph& g, typename Graph::vertex_id v,
                    traversal_options cfg = {}) {
  return async_bfs(g, v, cfg).max_level();
}

struct diameter_estimate {
  dist_t lower_bound = 0;
  std::uint64_t sweeps = 0;
};

/// Double-sweep diameter lower bound with `rounds` restarts. Deterministic
/// in `seed`. Returns 0 for graphs whose sampled components are singletons.
template <typename Graph>
diameter_estimate estimate_diameter(const Graph& g, unsigned rounds = 2,
                                    std::uint64_t seed = 1,
                                    traversal_options cfg = {}) {
  using V = typename Graph::vertex_id;
  diameter_estimate est;
  const std::uint64_t n = g.num_vertices();
  if (n == 0) return est;
  xoshiro256ss rng(splitmix64(seed).next());
  for (unsigned round = 0; round < rounds; ++round) {
    V start = static_cast<V>(rng.next_below(n));
    // First sweep: find the farthest reached vertex from the random seed.
    const auto first = async_bfs(g, start, cfg);
    ++est.sweeps;
    V far = start;
    dist_t far_level = 0;
    for (std::uint64_t v = 0; v < n; ++v) {
      const dist_t l = first.level[v];
      if (l != infinite_distance<dist_t> && l > far_level) {
        far_level = l;
        far = static_cast<V>(v);
      }
    }
    // Second sweep from the periphery: its eccentricity bounds the diameter.
    const auto second = async_bfs(g, far, cfg);
    ++est.sweeps;
    const dist_t ecc = second.max_level();
    if (ecc > est.lower_bound) est.lower_bound = ecc;
  }
  return est;
}

/// Mean shortest-path hop count over `samples` BFS sources (reachable pairs
/// only). The "small diameter" property shows up as a small value here even
/// for huge graphs.
template <typename Graph>
double average_path_length_sampled(const Graph& g, unsigned samples = 4,
                                   std::uint64_t seed = 7,
                                   traversal_options cfg = {}) {
  using V = typename Graph::vertex_id;
  const std::uint64_t n = g.num_vertices();
  if (n == 0 || samples == 0) return 0.0;
  xoshiro256ss rng(splitmix64(seed).next());
  std::uint64_t pairs = 0;
  double total = 0.0;
  for (unsigned s = 0; s < samples; ++s) {
    const V start = static_cast<V>(rng.next_below(n));
    const auto r = async_bfs(g, start, cfg);
    for (std::uint64_t v = 0; v < n; ++v) {
      const dist_t l = r.level[v];
      if (v != start && l != infinite_distance<dist_t>) {
        total += static_cast<double>(l);
        ++pairs;
      }
    }
  }
  return pairs == 0 ? 0.0 : total / static_cast<double>(pairs);
}

}  // namespace asyncgt
