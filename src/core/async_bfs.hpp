// Asynchronous Breadth First Search.
//
// The paper computes BFS "by applying our asynchronous SSSP algorithm with
// all edge weights equal to 1" (§III-B). This visitor is that
// specialization: the priority is the BFS level and every push adds one.
// Running it on a weighted graph deliberately ignores the weights, so the
// same input graph serves both the BFS and SSSP benches.
//
// The `Queue` the visitor pushes into is the traversal engine's per-worker
// handle: each push lands in a thread-local outbox buffer and is delivered
// to the owner queue in batches of flush_batch (see queue/mailbox.hpp), so
// the per-edge push here costs no lock and no atomic. Levels and parents
// for v are only ever written on owner(v)'s thread (exclusivity), batched
// or not.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <utility>

#include "core/traversal_result.hpp"
#include "graph/types.hpp"
#include "queue/visitor_queue.hpp"
#include "service/engine.hpp"

namespace asyncgt {

template <typename Graph>
struct bfs_state {
  const Graph* g = nullptr;
  std::vector<dist_t> level;
  std::vector<typename Graph::vertex_id> parent;
  sharded_counter updates;

  bfs_state(const Graph& graph, std::size_t num_threads)
      : g(&graph),
        level(graph.num_vertices(), infinite_distance<dist_t>),
        parent(graph.num_vertices(),
               invalid_vertex<typename Graph::vertex_id>),
        updates(num_threads) {}
};

template <typename VertexId>
struct bfs_visitor {
  VertexId vtx{};
  VertexId cur_parent{};
  dist_t cur_level = 0;

  VertexId vertex() const noexcept { return vtx; }
  dist_t priority() const noexcept { return cur_level; }

  template <typename State, typename Queue>
  void visit(State& s, Queue& q, std::size_t tid) const {
    if (cur_level < s.level[vtx]) {
      s.level[vtx] = cur_level;
      s.parent[vtx] = cur_parent;
      s.updates.add(tid);
      telemetry::metric_scope::count_edges(s.g->out_degree(vtx));
      s.g->for_each_out_edge(vtx, [&](VertexId vj, weight_t) {
        q.push(bfs_visitor{vj, vtx, cur_level + 1});
      });
    }
  }
};

/// Session API: submits a BFS job to this engine and returns its handle
/// immediately; the job runs on the engine's pooled workers, concurrently
/// with any other active jobs. See docs/service_api.md.
template <typename Graph>
job<bfs_result<typename Graph::vertex_id>> engine::submit_bfs(
    const Graph& g, typename Graph::vertex_id start,
    std::optional<traversal_options> opts) {
  using V = typename Graph::vertex_id;
  if (start >= g.num_vertices()) {
    throw std::out_of_range("async_bfs: start vertex out of range");
  }
  telemetry::metrics_registry* metrics = resolve_metrics(opts);
  return submit_traversal<bfs_visitor<V>>(
      opts, bfs_state<Graph>(g, resolve_threads(opts)),
      [start](auto& q, bfs_state<Graph>&) {
        q.push(bfs_visitor<V>{start, start, 0});
      },
      [metrics](bfs_state<Graph>& s, queue_run_stats stats) {
        bfs_result<V> out;
        out.level = std::move(s.level);
        out.parent = std::move(s.parent);
        out.stats = std::move(stats);
        out.updates = s.updates.total();
        if (metrics != nullptr) out.work().record(*metrics, "bfs");
        return out;
      },
      "bfs");
}

/// One-shot compatibility wrapper: submit to the process-local engine and
/// block for the result — the seed library's exact contract (including
/// traversal_aborted propagation), now served by warm pooled workers.
template <typename Graph>
bfs_result<typename Graph::vertex_id> async_bfs(
    const Graph& g, typename Graph::vertex_id start,
    traversal_options opts = {}) {
  return engine::process_default().submit_bfs(g, start, std::move(opts)).get();
}

}  // namespace asyncgt
