// Asynchronous Breadth First Search.
//
// The paper computes BFS "by applying our asynchronous SSSP algorithm with
// all edge weights equal to 1" (§III-B). This visitor is that
// specialization: the priority is the BFS level and every push adds one.
// Running it on a weighted graph deliberately ignores the weights, so the
// same input graph serves both the BFS and SSSP benches.
//
// The `Queue` the visitor pushes into is the traversal engine's per-worker
// handle: each push lands in a thread-local outbox buffer and is delivered
// to the owner queue in batches of flush_batch (see queue/mailbox.hpp), so
// the per-edge push here costs no lock and no atomic. Levels and parents
// for v are only ever written on owner(v)'s thread (exclusivity), batched
// or not.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "core/traversal_result.hpp"
#include "graph/types.hpp"
#include "queue/visitor_queue.hpp"

namespace asyncgt {

template <typename Graph>
struct bfs_state {
  const Graph* g = nullptr;
  std::vector<dist_t> level;
  std::vector<typename Graph::vertex_id> parent;
  sharded_counter updates;

  bfs_state(const Graph& graph, std::size_t num_threads)
      : g(&graph),
        level(graph.num_vertices(), infinite_distance<dist_t>),
        parent(graph.num_vertices(),
               invalid_vertex<typename Graph::vertex_id>),
        updates(num_threads) {}
};

template <typename VertexId>
struct bfs_visitor {
  VertexId vtx{};
  VertexId cur_parent{};
  dist_t cur_level = 0;

  VertexId vertex() const noexcept { return vtx; }
  dist_t priority() const noexcept { return cur_level; }

  template <typename State, typename Queue>
  void visit(State& s, Queue& q, std::size_t tid) const {
    if (cur_level < s.level[vtx]) {
      s.level[vtx] = cur_level;
      s.parent[vtx] = cur_parent;
      s.updates.add(tid);
      s.g->for_each_out_edge(vtx, [&](VertexId vj, weight_t) {
        q.push(bfs_visitor{vj, vtx, cur_level + 1});
      });
    }
  }
};

template <typename Graph>
bfs_result<typename Graph::vertex_id> async_bfs(
    const Graph& g, typename Graph::vertex_id start,
    visitor_queue_config cfg = {}) {
  using V = typename Graph::vertex_id;
  if (start >= g.num_vertices()) {
    throw std::out_of_range("async_bfs: start vertex out of range");
  }
  bfs_state<Graph> state(g, cfg.num_threads);
  visitor_queue<bfs_visitor<V>, bfs_state<Graph>> q(cfg);
  q.push(bfs_visitor<V>{start, start, 0});
  auto stats = q.run(state);

  bfs_result<V> out;
  out.level = std::move(state.level);
  out.parent = std::move(state.parent);
  out.stats = std::move(stats);
  out.updates = state.updates.total();
  if (cfg.metrics != nullptr) out.work().record(*cfg.metrics, "bfs");
  return out;
}

}  // namespace asyncgt
