// Result types returned by the asynchronous traversals, plus shared
// per-thread counter plumbing.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/types.hpp"
#include "queue/queue_stats.hpp"
#include "telemetry/metric_scope.hpp"
#include "telemetry/metrics_registry.hpp"
#include "util/cache_line.hpp"

namespace asyncgt {

/// 64-bit path lengths: edge weights are 32-bit but paths sum many of them.
using dist_t = std::uint64_t;

/// Per-thread contention-free counters, summed after the run.
class sharded_counter {
 public:
  explicit sharded_counter(std::size_t shards) : shards_(shards) {}

  void add(std::size_t shard, std::uint64_t n = 1) noexcept {
    shards_[shard].value += n;
  }

  std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& s : shards_) sum += s.value;
    return sum;
  }

 private:
  std::vector<padded<std::uint64_t>> shards_;
};

/// Work-proxy metrics shared by the label-correcting traversals. These are
/// the paper's machine-independent cost measures, all derived from counters
/// the runs maintain anyway:
///   wasted_visits          visits whose candidate label lost the race — the
///                          price of asynchrony ("possibly requiring
///                          multiple visits per vertex");
///   label_corrections      relaxations beyond each vertex's first — the
///                          aggregate label-correction depth.
struct traversal_work {
  std::uint64_t visits = 0;
  std::uint64_t pushes = 0;
  std::uint64_t updates = 0;
  std::uint64_t relaxed_vertices = 0;
  std::uint64_t wasted_visits = 0;
  std::uint64_t label_corrections = 0;

  /// Records the work proxies as "<algo>.*" counters (shard 0; called once
  /// per run from the driver, never from the hot path). When the calling
  /// thread carries an ambient metric_scope (the service engine wraps job
  /// finalizers in one), the same counters land in the job's named deltas,
  /// so per-job <algo>.* sums conserve against the shared registry.
  void record(telemetry::metrics_registry& reg, const char* algo) const {
    record_into(reg, algo);
    if (telemetry::metric_scope* sc = telemetry::metric_scope::current()) {
      record_into(sc->deltas(), algo);
    }
  }

  void record_into(telemetry::metrics_registry& reg, const char* algo) const {
    const std::string p(algo);
    reg.get_counter(p + ".visits").add(0, visits);
    reg.get_counter(p + ".updates").add(0, updates);
    reg.get_counter(p + ".relaxed_vertices").add(0, relaxed_vertices);
    reg.get_counter(p + ".wasted_visits").add(0, wasted_visits);
    reg.get_counter(p + ".label_corrections").add(0, label_corrections);
  }
};

template <typename VertexId>
struct bfs_result {
  std::vector<dist_t> level;     // infinite_distance<dist_t> = unreached
  std::vector<VertexId> parent;  // invalid_vertex = none
  queue_run_stats stats;
  std::uint64_t updates = 0;  // successful label corrections

  std::uint64_t visited_count() const {
    std::uint64_t n = 0;
    for (const auto l : level) n += (l != infinite_distance<dist_t>);
    return n;
  }

  /// Largest finite level (the number of BFS levels, paper Table I "# levs").
  dist_t max_level() const {
    dist_t m = 0;
    for (const auto l : level) {
      if (l != infinite_distance<dist_t> && l > m) m = l;
    }
    return m;
  }

  traversal_work work() const {
    traversal_work w;
    w.visits = stats.visits;
    w.pushes = stats.pushes;
    w.updates = updates;
    w.relaxed_vertices = visited_count();
    w.wasted_visits = stats.visits - updates;
    w.label_corrections = updates - w.relaxed_vertices;
    return w;
  }
};

template <typename VertexId>
struct sssp_result {
  std::vector<dist_t> dist;
  std::vector<VertexId> parent;
  queue_run_stats stats;
  std::uint64_t updates = 0;

  std::uint64_t visited_count() const {
    std::uint64_t n = 0;
    for (const auto d : dist) n += (d != infinite_distance<dist_t>);
    return n;
  }

  traversal_work work() const {
    traversal_work w;
    w.visits = stats.visits;
    w.pushes = stats.pushes;
    w.updates = updates;
    w.relaxed_vertices = visited_count();
    w.wasted_visits = stats.visits - updates;
    w.label_corrections = updates - w.relaxed_vertices;
    return w;
  }
};

template <typename VertexId>
struct cc_result {
  std::vector<VertexId> component;  // smallest reachable vertex id
  queue_run_stats stats;
  std::uint64_t updates = 0;

  /// Number of distinct components (paper Table III "# CCs"). A vertex is a
  /// component root iff component[v] == v.
  std::uint64_t num_components() const {
    std::uint64_t n = 0;
    for (std::size_t v = 0; v < component.size(); ++v) {
      n += (component[v] == static_cast<VertexId>(v));
    }
    return n;
  }

  /// Size of the largest component.
  std::uint64_t largest_component_size() const {
    std::vector<std::uint64_t> sizes(component.size(), 0);
    for (const auto c : component) ++sizes[c];
    std::uint64_t best = 0;
    for (const auto s : sizes) best = std::max(best, s);
    return best;
  }

  traversal_work work() const {
    traversal_work w;
    w.visits = stats.visits;
    w.pushes = stats.pushes;
    w.updates = updates;
    // Every vertex is seeded with its own id against an invalid (maximal)
    // initial label, so each one relaxes at least once.
    w.relaxed_vertices = component.size();
    w.wasted_visits = stats.visits - updates;
    w.label_corrections = updates - w.relaxed_vertices;
    return w;
  }
};

}  // namespace asyncgt
