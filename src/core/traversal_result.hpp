// Result types returned by the asynchronous traversals, plus shared
// per-thread counter plumbing.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/types.hpp"
#include "queue/queue_stats.hpp"
#include "util/cache_line.hpp"

namespace asyncgt {

/// 64-bit path lengths: edge weights are 32-bit but paths sum many of them.
using dist_t = std::uint64_t;

/// Per-thread contention-free counters, summed after the run.
class sharded_counter {
 public:
  explicit sharded_counter(std::size_t shards) : shards_(shards) {}

  void add(std::size_t shard, std::uint64_t n = 1) noexcept {
    shards_[shard].value += n;
  }

  std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& s : shards_) sum += s.value;
    return sum;
  }

 private:
  std::vector<padded<std::uint64_t>> shards_;
};

template <typename VertexId>
struct bfs_result {
  std::vector<dist_t> level;     // infinite_distance<dist_t> = unreached
  std::vector<VertexId> parent;  // invalid_vertex = none
  queue_run_stats stats;
  std::uint64_t updates = 0;  // successful label corrections

  std::uint64_t visited_count() const {
    std::uint64_t n = 0;
    for (const auto l : level) n += (l != infinite_distance<dist_t>);
    return n;
  }

  /// Largest finite level (the number of BFS levels, paper Table I "# levs").
  dist_t max_level() const {
    dist_t m = 0;
    for (const auto l : level) {
      if (l != infinite_distance<dist_t> && l > m) m = l;
    }
    return m;
  }
};

template <typename VertexId>
struct sssp_result {
  std::vector<dist_t> dist;
  std::vector<VertexId> parent;
  queue_run_stats stats;
  std::uint64_t updates = 0;

  std::uint64_t visited_count() const {
    std::uint64_t n = 0;
    for (const auto d : dist) n += (d != infinite_distance<dist_t>);
    return n;
  }
};

template <typename VertexId>
struct cc_result {
  std::vector<VertexId> component;  // smallest reachable vertex id
  queue_run_stats stats;
  std::uint64_t updates = 0;

  /// Number of distinct components (paper Table III "# CCs"). A vertex is a
  /// component root iff component[v] == v.
  std::uint64_t num_components() const {
    std::uint64_t n = 0;
    for (std::size_t v = 0; v < component.size(); ++v) {
      n += (component[v] == static_cast<VertexId>(v));
    }
    return n;
  }

  /// Size of the largest component.
  std::uint64_t largest_component_size() const {
    std::vector<std::uint64_t> sizes(component.size(), 0);
    for (const auto c : component) ++sizes[c];
    std::uint64_t best = 0;
    for (const auto s : sizes) best = std::max(best, s);
    return best;
  }
};

}  // namespace asyncgt
