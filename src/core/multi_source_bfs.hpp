// Multi-source asynchronous BFS: distance to the *nearest* of a set of
// sources — the landmark/seed-set primitive used for distance sketches,
// closeness approximations, and the double-sweep diameter estimate in
// graph_metrics.hpp.
//
// Implementation: exactly the paper's BFS visitor, seeded from every source
// at level 0; label correction resolves overlaps so each vertex ends with
// min over sources of the hop distance, and parent links form a forest
// rooted at the sources. The seeds are pushed externally (one termination
// reservation each) before run(); everything after that flows through the
// engine's batched per-worker delivery.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/async_bfs.hpp"

namespace asyncgt {

/// Session API: submits a multi-source BFS job to this engine; the seeds
/// are pushed on the submitting thread (prepare phase), everything after
/// flows through the job's pooled workers.
template <typename Graph>
job<bfs_result<typename Graph::vertex_id>> engine::submit_multi_source_bfs(
    const Graph& g, const std::vector<typename Graph::vertex_id>& sources,
    std::optional<traversal_options> opts) {
  using V = typename Graph::vertex_id;
  if (sources.empty()) {
    throw std::invalid_argument("multi_source_bfs: need at least one source");
  }
  for (const V s : sources) {
    if (s >= g.num_vertices()) {
      throw std::out_of_range("multi_source_bfs: source out of range");
    }
  }
  return submit_traversal<bfs_visitor<V>>(
      opts, bfs_state<Graph>(g, resolve_threads(opts)),
      // Safe by-reference capture: prepare runs synchronously inside submit.
      [&sources](auto& q, bfs_state<Graph>&) {
        for (const V s : sources) q.push(bfs_visitor<V>{s, s, 0});
      },
      [](bfs_state<Graph>& s, queue_run_stats stats) {
        bfs_result<V> out;
        out.level = std::move(s.level);
        out.parent = std::move(s.parent);
        out.stats = std::move(stats);
        out.updates = s.updates.total();
        return out;
      },
      "msbfs");
}

/// One-shot compatibility wrapper over the process-local engine.
template <typename Graph>
bfs_result<typename Graph::vertex_id> async_multi_source_bfs(
    const Graph& g, const std::vector<typename Graph::vertex_id>& sources,
    traversal_options opts = {}) {
  return engine::process_default()
      .submit_multi_source_bfs(g, sources, std::move(opts))
      .get();
}

}  // namespace asyncgt
