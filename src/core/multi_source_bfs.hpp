// Multi-source asynchronous BFS: distance to the *nearest* of a set of
// sources — the landmark/seed-set primitive used for distance sketches,
// closeness approximations, and the double-sweep diameter estimate in
// graph_metrics.hpp.
//
// Implementation: exactly the paper's BFS visitor, seeded from every source
// at level 0; label correction resolves overlaps so each vertex ends with
// min over sources of the hop distance, and parent links form a forest
// rooted at the sources. The seeds are pushed externally (one termination
// reservation each) before run(); everything after that flows through the
// engine's batched per-worker delivery.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/async_bfs.hpp"

namespace asyncgt {

template <typename Graph>
bfs_result<typename Graph::vertex_id> async_multi_source_bfs(
    const Graph& g, const std::vector<typename Graph::vertex_id>& sources,
    visitor_queue_config cfg = {}) {
  using V = typename Graph::vertex_id;
  if (sources.empty()) {
    throw std::invalid_argument("multi_source_bfs: need at least one source");
  }
  for (const V s : sources) {
    if (s >= g.num_vertices()) {
      throw std::out_of_range("multi_source_bfs: source out of range");
    }
  }
  bfs_state<Graph> state(g, cfg.num_threads);
  visitor_queue<bfs_visitor<V>, bfs_state<Graph>> q(cfg);
  for (const V s : sources) q.push(bfs_visitor<V>{s, s, 0});
  auto stats = q.run(state);

  bfs_result<V> out;
  out.level = std::move(state.level);
  out.parent = std::move(state.parent);
  out.stats = std::move(stats);
  out.updates = state.updates.total();
  return out;
}

}  // namespace asyncgt
