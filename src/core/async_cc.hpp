// Asynchronous Connected Components for undirected graphs (paper
// Algorithms 3 and 4).
//
// Every vertex is seeded with a visitor carrying its own id as candidate
// component id; a visitor relaxes a vertex whenever it brings a smaller id
// and propagates it to all neighbours. "Our approach to CC can be viewed as
// performing parallel BFS starting from every vertex. When two BFSs ...
// merge, the BFS that started from the lowest vertex identifier takes over"
// (§III-C). On completion every vertex holds the smallest vertex id
// reachable from it, so component roots are exactly { v : cc[v] == v }.
//
// Precondition: the graph must be symmetric (undirected); otherwise labels
// propagate only along edge direction and the result is not the undirected
// CC. graph_stats.hpp's is_symmetric() checks this in tests.
//
// The per-vertex seeding goes through run_seeded(), whose make_visitor
// lambda is invoked as const from every worker concurrently (it must be
// const-callable and thread-safe — the engine enforces the former at
// compile time). Seed pushes ride the same batched outbox delivery as
// visitor pushes, pre-accounted in the termination counter.
#pragma once

#include <cstdint>
#include <utility>

#include "core/traversal_result.hpp"
#include "graph/types.hpp"
#include "queue/visitor_queue.hpp"
#include "service/engine.hpp"

namespace asyncgt {

template <typename Graph>
struct cc_state {
  const Graph* g = nullptr;
  std::vector<typename Graph::vertex_id> ccid;
  sharded_counter updates;

  cc_state(const Graph& graph, std::size_t num_threads)
      : g(&graph),
        ccid(graph.num_vertices(),
             invalid_vertex<typename Graph::vertex_id>),
        updates(num_threads) {}
};

template <typename VertexId>
struct cc_visitor {
  VertexId vtx{};
  VertexId cur_ccid{};

  VertexId vertex() const noexcept { return vtx; }
  VertexId priority() const noexcept { return cur_ccid; }

  template <typename State, typename Queue>
  void visit(State& s, Queue& q, std::size_t tid) const {
    if (cur_ccid < s.ccid[vtx]) {
      s.ccid[vtx] = cur_ccid;  // relax vertex information
      s.updates.add(tid);
      telemetry::metric_scope::count_edges(s.g->out_degree(vtx));
      s.g->for_each_out_edge(vtx, [&](VertexId vj, weight_t) {
        q.push(cc_visitor{vj, cur_ccid});
      });
    }
  }
};

/// Session API: submits a CC job to this engine; see submit_bfs. Seeding
/// (Algorithm 3: one visitor per vertex, the vertex's own descriptor as the
/// starting component id) happens on the job's pooled workers.
template <typename Graph>
job<cc_result<typename Graph::vertex_id>> engine::submit_cc(
    const Graph& g, std::optional<traversal_options> opts) {
  using V = typename Graph::vertex_id;
  telemetry::metrics_registry* metrics = resolve_metrics(opts);
  return submit_seeded<cc_visitor<V>>(
      opts, cc_state<Graph>(g, resolve_threads(opts)), g.num_vertices(),
      [](V v) { return cc_visitor<V>{v, v}; },
      [metrics](cc_state<Graph>& s, queue_run_stats stats) {
        cc_result<V> out;
        out.component = std::move(s.ccid);
        out.stats = std::move(stats);
        out.updates = s.updates.total();
        if (metrics != nullptr) out.work().record(*metrics, "cc");
        return out;
      },
      "cc");
}

/// One-shot compatibility wrapper over the process-local engine.
template <typename Graph>
cc_result<typename Graph::vertex_id> async_cc(const Graph& g,
                                              traversal_options opts = {}) {
  return engine::process_default().submit_cc(g, std::move(opts)).get();
}

}  // namespace asyncgt
