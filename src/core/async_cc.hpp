// Asynchronous Connected Components for undirected graphs (paper
// Algorithms 3 and 4).
//
// Every vertex is seeded with a visitor carrying its own id as candidate
// component id; a visitor relaxes a vertex whenever it brings a smaller id
// and propagates it to all neighbours. "Our approach to CC can be viewed as
// performing parallel BFS starting from every vertex. When two BFSs ...
// merge, the BFS that started from the lowest vertex identifier takes over"
// (§III-C). On completion every vertex holds the smallest vertex id
// reachable from it, so component roots are exactly { v : cc[v] == v }.
//
// Precondition: the graph must be symmetric (undirected); otherwise labels
// propagate only along edge direction and the result is not the undirected
// CC. graph_stats.hpp's is_symmetric() checks this in tests.
//
// The per-vertex seeding goes through run_seeded(), whose make_visitor
// lambda is invoked as const from every worker concurrently (it must be
// const-callable and thread-safe — the engine enforces the former at
// compile time). Seed pushes ride the same batched outbox delivery as
// visitor pushes, pre-accounted in the termination counter.
#pragma once

#include <cstdint>

#include "core/traversal_result.hpp"
#include "graph/types.hpp"
#include "queue/visitor_queue.hpp"

namespace asyncgt {

template <typename Graph>
struct cc_state {
  const Graph* g = nullptr;
  std::vector<typename Graph::vertex_id> ccid;
  sharded_counter updates;

  cc_state(const Graph& graph, std::size_t num_threads)
      : g(&graph),
        ccid(graph.num_vertices(),
             invalid_vertex<typename Graph::vertex_id>),
        updates(num_threads) {}
};

template <typename VertexId>
struct cc_visitor {
  VertexId vtx{};
  VertexId cur_ccid{};

  VertexId vertex() const noexcept { return vtx; }
  VertexId priority() const noexcept { return cur_ccid; }

  template <typename State, typename Queue>
  void visit(State& s, Queue& q, std::size_t tid) const {
    if (cur_ccid < s.ccid[vtx]) {
      s.ccid[vtx] = cur_ccid;  // relax vertex information
      s.updates.add(tid);
      s.g->for_each_out_edge(vtx, [&](VertexId vj, weight_t) {
        q.push(cc_visitor{vj, cur_ccid});
      });
    }
  }
};

template <typename Graph>
cc_result<typename Graph::vertex_id> async_cc(const Graph& g,
                                              visitor_queue_config cfg = {}) {
  using V = typename Graph::vertex_id;
  cc_state<Graph> state(g, cfg.num_threads);
  visitor_queue<cc_visitor<V>, cc_state<Graph>> q(cfg);
  // Algorithm 3: queue a visitor for every vertex, in parallel, with the
  // vertex's own descriptor as the starting component id.
  auto stats = q.run_seeded(state, g.num_vertices(),
                            [](V v) { return cc_visitor<V>{v, v}; });

  cc_result<V> out;
  out.component = std::move(state.ccid);
  out.stats = std::move(stats);
  out.updates = state.updates.total();
  if (cfg.metrics != nullptr) out.work().record(*cfg.metrics, "cc");
  return out;
}

}  // namespace asyncgt
