// Frontier-adaptive hybrid (top-down / bottom-up) traversal.
//
// The paper's engine is purely asynchronous and push-based: every relaxed
// vertex pushes a visitor along each out-edge, so dense frontiers — the
// middle levels of a small-world BFS, the first waves of CC — inspect far
// more edges than they relax. Direction-optimizing traversal (Beamer,
// Buluç, Patterson, SC'12) flips those dense phases around: instead of the
// frontier pushing out-edges, every *unvisited* vertex scans its in-edges
// for a frontier parent and stops at the first hit. With a reverse view on
// the graph (csr_graph::ensure_reverse / sem_csr::open_reverse) the sweep
// is an early-exit scan and the total edges inspected drop by the ratio the
// bench harness (bench/ext_structure_sweep --hybrid) measures.
//
// This header grafts that idea onto the asynchronous engine without
// abandoning its label-correcting semantics (docs/hybrid_traversal.md
// walks through the proof obligations):
//
//   * Top-down phases run the normal visitor queue, but capped at a level
//     horizon: a visitor carrying a level >= horizon defers itself into a
//     per-thread buffer instead of relaxing. At quiescence every label
//     < horizon is exact (the run processed every visitor below the cap),
//     and the deferred buffers hold exactly the candidate edges into the
//     next level — which is both the next frontier and the m_f input to
//     the alpha test.
//   * Bottom-up phases are level-synchronous pull sweeps over the
//     still-unvisited candidates' in-edges, gang-scheduled on the engine's
//     worker pool (per-thread claim lists, driver applies them between
//     sweeps — no cross-thread writes, so the sweeps are race-free by
//     construction).
//   * The final flip back to top-down seeds "expand" visitors (push your
//     out-edges, relabel nothing) for the last bottom-up wave and runs the
//     queue with an infinite horizon — from an exact frontier, plain
//     asynchronous label correction finishes the traversal and converges
//     to the identical fixed point as the pure-async run. The diff harness
//     (ctest -L diff) asserts bit-identical labels on both IM and SEM
//     backends.
//
// The alpha/beta switch thresholds live in queue/frontier_estimator.hpp
// and come in through traversal_options (--hybrid-alpha / --hybrid-beta).
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/traversal_result.hpp"
#include "graph/types.hpp"
#include "queue/frontier_estimator.hpp"
#include "queue/visitor_queue.hpp"
#include "service/engine.hpp"
#include "util/cache_line.hpp"

namespace asyncgt {

/// One direction phase of a hybrid run, for observability: bench reports
/// serialize these under "phases" and compare_bench_json watches the
/// edge_inspections totals.
struct hybrid_phase {
  std::string direction;  // "top-down" | "bottom-up" | "async-tail"
  std::uint64_t depth = 0;             // BFS level computed / CC sweep index
  std::uint64_t edge_inspections = 0;  // edges scanned during this phase
  std::uint64_t frontier = 0;          // wave size the phase produced
};

/// Side-channel detail a hybrid run fills in when the caller passes one.
struct hybrid_extra {
  std::uint64_t direction_switches = 0;
  std::uint64_t edge_inspections = 0;  // sum over phases
  std::vector<hybrid_phase> phases;
};

/// Deferred-visitor record; carried in the widest id so the state struct
/// below does not depend on the visitor template.
struct hybrid_bfs_visitor_data {
  std::uint64_t vtx = 0;
  std::uint64_t parent = 0;
  dist_t level = 0;
};

template <typename Graph>
struct hybrid_bfs_state {
  using V = typename Graph::vertex_id;

  const Graph* g = nullptr;
  std::vector<dist_t> level;
  std::vector<V> parent;
  sharded_counter updates;
  sharded_counter inspected;  // edges scanned, all phases
  /// Visitors at level >= horizon defer instead of relaxing; the driver
  /// raises this one level per capped run and sets it to
  /// infinite_distance for the final asynchronous tail.
  dist_t horizon = infinite_distance<dist_t>;
  /// Per-thread deferred-visitor buffers (cache-line padded: workers append
  /// concurrently to their own).
  std::vector<padded<std::vector<hybrid_bfs_visitor_data>>> deferred;

  hybrid_bfs_state(const Graph& graph, std::size_t num_threads)
      : g(&graph),
        level(graph.num_vertices(), infinite_distance<dist_t>),
        parent(graph.num_vertices(), invalid_vertex<V>),
        updates(num_threads),
        inspected(num_threads),
        deferred(num_threads) {}
};

template <typename VertexId>
struct hybrid_bfs_visitor {
  VertexId vtx{};
  VertexId cur_parent{};
  dist_t cur_level = 0;
  /// Flip-back seed: vtx already holds cur_level; push its out-edges
  /// without relabeling (the bottom-up sweep did the relabeling).
  bool expand = false;

  VertexId vertex() const noexcept { return vtx; }
  dist_t priority() const noexcept { return cur_level; }

  template <typename State, typename Queue>
  void visit(State& s, Queue& q, std::size_t tid) const {
    if (expand) {
      if (s.level[vtx] == cur_level) {
        const std::uint64_t d = s.g->out_degree(vtx);
        s.inspected.add(tid, d);
        telemetry::metric_scope::count_edges(d);
        s.g->for_each_out_edge(vtx, [&](VertexId vj, weight_t) {
          q.push(hybrid_bfs_visitor{vj, vtx, cur_level + 1, false});
        });
      }
      return;
    }
    if (cur_level < s.level[vtx]) {
      if (cur_level >= s.horizon) {
        s.deferred[tid].value.push_back(
            {static_cast<std::uint64_t>(vtx),
             static_cast<std::uint64_t>(cur_parent), cur_level});
        return;
      }
      s.level[vtx] = cur_level;
      s.parent[vtx] = cur_parent;
      s.updates.add(tid);
      const std::uint64_t d = s.g->out_degree(vtx);
      s.inspected.add(tid, d);
      telemetry::metric_scope::count_edges(d);
      s.g->for_each_out_edge(vtx, [&](VertexId vj, weight_t) {
        q.push(hybrid_bfs_visitor{vj, vtx, cur_level + 1, false});
      });
    }
  }
};

namespace detail {

/// Gangs `body(tid, begin, end)` over `num_threads` contiguous ranges of
/// [0, n) on the pool; runs serially when no pool is configured. The wait
/// is the barrier the sweep protocols rely on.
template <typename F>
void hybrid_parallel_ranges(service::worker_pool* pool,
                            std::size_t num_threads, std::uint64_t n,
                            F&& body) {
  if (pool == nullptr || num_threads <= 1 || n < 2 * num_threads) {
    body(std::size_t{0}, std::uint64_t{0}, n);
    return;
  }
  const std::uint64_t chunk = (n + num_threads - 1) / num_threads;
  pool->wait(pool->submit(num_threads, [&](std::size_t t) {
    const std::uint64_t b = static_cast<std::uint64_t>(t) * chunk;
    if (b >= n) return;
    body(t, b, std::min(n, b + chunk));
  }));
}

/// Folds one capped/tail run's stats into the whole-traversal aggregate.
inline void hybrid_accumulate(queue_run_stats& agg,
                              const queue_run_stats& run) {
  agg.visits += run.visits;
  agg.pushes += run.pushes;
  agg.flushes += run.flushes;
  agg.wakeups += run.wakeups;
  agg.max_queue_length = std::max(agg.max_queue_length, run.max_queue_length);
  agg.elapsed_seconds += run.elapsed_seconds;
  if (agg.visits_per_queue.size() < run.visits_per_queue.size()) {
    agg.visits_per_queue.resize(run.visits_per_queue.size(), 0);
  }
  for (std::size_t i = 0; i < run.visits_per_queue.size(); ++i) {
    agg.visits_per_queue[i] += run.visits_per_queue[i];
  }
}

inline void hybrid_record_metrics(telemetry::metrics_registry* metrics,
                                  const hybrid_extra& extra,
                                  const char* algo) {
  if (metrics == nullptr) return;
  metrics->get_counter("engine.direction_switches")
      .add(0, extra.direction_switches);
  metrics->get_counter(std::string(algo) + ".edge_inspections")
      .add(0, extra.edge_inspections);
}

}  // namespace detail

/// Hybrid BFS. Requires a reverse view on `g` (throws std::invalid_argument
/// otherwise); produces exactly async_bfs's labels. `extra`, when non-null,
/// receives the per-phase direction/inspection breakdown.
template <typename Graph>
bfs_result<typename Graph::vertex_id> hybrid_bfs(
    const Graph& g, typename Graph::vertex_id start,
    traversal_options opts = {}, hybrid_extra* extra = nullptr) {
  using V = typename Graph::vertex_id;
  if (start >= g.num_vertices()) {
    throw std::out_of_range("hybrid_bfs: start vertex out of range");
  }
  if (!g.has_reverse()) {
    throw std::invalid_argument(
        "hybrid_bfs: graph has no reverse view (ensure_reverse / "
        "open_reverse first)");
  }
  const double alpha = opts.hybrid_alpha;
  const double beta = opts.hybrid_beta;
  visitor_queue_config cfg =
      engine::process_default().pooled_config(std::move(opts));
  frontier_estimator est(alpha, beta);
  cfg.estimator = &est;

  const std::uint64_t n = g.num_vertices();
  hybrid_bfs_state<Graph> s(g, cfg.num_threads);
  visitor_queue<hybrid_bfs_visitor<V>, hybrid_bfs_state<Graph>> q(cfg);

  hybrid_extra detail_out;
  queue_run_stats agg;

  // Level 0 is applied directly; `wave` always holds the vertices newly
  // labelled at level `depth`.
  s.level[start] = 0;
  s.parent[start] = start;
  s.updates.add(0);
  std::vector<V> wave{start};
  dist_t depth = 0;
  // m_u: out-edges still owned by unvisited vertices (the alpha test's
  // denominator); maintained incrementally as waves land.
  std::uint64_t m_u = g.num_edges() - g.out_degree(start);

  enum class direction { top_down, bottom_up, async_tail };
  direction dir = direction::top_down;
  // Unvisited candidates for bottom-up sweeps; built on first entry,
  // compacted between sweeps.
  std::vector<V> candidates;
  bool candidates_built = false;

  while (!wave.empty()) {
    est.sample(wave.size());
    // Decide the direction that computes level depth+1.
    if (dir == direction::top_down) {
      std::uint64_t m_f = 0;
      for (const V v : wave) m_f += g.out_degree(v);
      if (est.go_bottom_up(m_f, m_u)) {
        dir = direction::bottom_up;
        ++detail_out.direction_switches;
      }
    } else if (dir == direction::bottom_up &&
               !est.stay_bottom_up(wave.size(), n)) {
      dir = direction::async_tail;
      ++detail_out.direction_switches;
    }

    const std::uint64_t inspected_before = s.inspected.total();
    std::vector<V> next_wave;

    if (dir == direction::async_tail) {
      // From an exact frontier, plain asynchronous label correction
      // finishes the traversal: seed expanders for the last wave and run
      // uncapped to quiescence.
      s.horizon = infinite_distance<dist_t>;
      for (const V v : wave) {
        q.push(hybrid_bfs_visitor<V>{v, v, depth, true});
      }
      detail::hybrid_accumulate(agg, q.run(s));
      detail_out.phases.push_back(
          {"async-tail", depth + 1, s.inspected.total() - inspected_before,
           0});
      break;
    }

    if (dir == direction::top_down) {
      // One capped run: expanders push the wave's out-edges; every level
      // depth+1 candidate defers itself. Quiescence makes the deferred
      // buffers the complete candidate set.
      s.horizon = depth + 1;
      for (const V v : wave) {
        q.push(hybrid_bfs_visitor<V>{v, v, depth, true});
      }
      detail::hybrid_accumulate(agg, q.run(s));
      // Apply the deferred relaxations serially (first candidate per
      // vertex wins, as in any label-correcting order).
      for (auto& lane : s.deferred) {
        for (const hybrid_bfs_visitor_data& d : lane.value) {
          const V v = static_cast<V>(d.vtx);
          if (d.level < s.level[v]) {
            s.level[v] = d.level;
            s.parent[v] = static_cast<V>(d.parent);
            s.updates.add(0);
            next_wave.push_back(v);
          }
        }
        lane.value.clear();
      }
    } else {
      // Bottom-up sweep: every unvisited candidate scans its in-edges for
      // a parent at `depth`, stopping (for accounting) at the first hit.
      if (!candidates_built) {
        candidates_built = true;
        candidates.reserve(n > wave.size() ? n - wave.size() : 0);
        for (std::uint64_t v = 0; v < n; ++v) {
          if (s.level[v] == infinite_distance<dist_t>) {
            candidates.push_back(static_cast<V>(v));
          }
        }
      } else {
        std::size_t keep = 0;
        for (const V v : candidates) {
          if (s.level[v] == infinite_distance<dist_t>) {
            candidates[keep++] = v;
          }
        }
        candidates.resize(keep);
      }
      struct claim {
        V vtx;
        V parent;
      };
      std::vector<padded<std::vector<claim>>> claims(cfg.num_threads);
      std::vector<padded<std::uint64_t>> scanned(cfg.num_threads);
      detail::hybrid_parallel_ranges(
          cfg.pool, cfg.num_threads, candidates.size(),
          [&](std::size_t tid, std::uint64_t b, std::uint64_t e) {
            std::uint64_t local_scanned = 0;
            for (std::uint64_t i = b; i < e; ++i) {
              const V v = candidates[i];
              bool claimed = false;
              g.for_each_in_edge(v, [&](V u, weight_t) {
                if (claimed) return;
                ++local_scanned;
                if (s.level[u] == depth) {
                  claimed = true;
                  claims[tid].value.push_back({v, u});
                }
              });
            }
            scanned[tid].value += local_scanned;
          });
      for (std::size_t t = 0; t < cfg.num_threads; ++t) {
        s.inspected.add(0, scanned[t].value);
        for (const claim& c : claims[t].value) {
          s.level[c.vtx] = depth + 1;
          s.parent[c.vtx] = c.parent;
          s.updates.add(0);
          next_wave.push_back(c.vtx);
        }
      }
      telemetry::metric_scope::count_edges(s.inspected.total() -
                                           inspected_before);
      // Each claim is morally one visit: keep the aggregate work proxies
      // (wasted_visits = visits - updates) non-degenerate.
      agg.visits += next_wave.size();
    }

    ++depth;
    for (const V v : next_wave) m_u -= g.out_degree(v);
    detail_out.phases.push_back(
        {dir == direction::top_down ? "top-down" : "bottom-up", depth,
         s.inspected.total() - inspected_before, next_wave.size()});
    wave = std::move(next_wave);
  }

  detail_out.edge_inspections = s.inspected.total();
  detail::hybrid_record_metrics(cfg.metrics, detail_out, "hybrid_bfs");
  if (extra != nullptr) *extra = std::move(detail_out);

  bfs_result<V> out;
  out.level = std::move(s.level);
  out.parent = std::move(s.parent);
  out.stats = std::move(agg);
  out.updates = s.updates.total();
  if (cfg.metrics != nullptr) out.work().record(*cfg.metrics, "hybrid_bfs");
  return out;
}

template <typename Graph>
struct hybrid_cc_state {
  using V = typename Graph::vertex_id;

  const Graph* g = nullptr;
  std::vector<V> ccid;
  sharded_counter updates;
  sharded_counter inspected;

  hybrid_cc_state(const Graph& graph, std::size_t num_threads)
      : g(&graph),
        ccid(graph.num_vertices()),
        updates(num_threads),
        inspected(num_threads) {
    for (std::uint64_t v = 0; v < graph.num_vertices(); ++v) {
      ccid[v] = static_cast<V>(v);
    }
  }
};

template <typename VertexId>
struct hybrid_cc_visitor {
  VertexId vtx{};
  VertexId cur_ccid{};
  /// Flip-back seed: vtx already holds cur_ccid; push it to the neighbours
  /// without relabeling.
  bool expand = false;

  VertexId vertex() const noexcept { return vtx; }
  VertexId priority() const noexcept { return cur_ccid; }

  template <typename State, typename Queue>
  void visit(State& s, Queue& q, std::size_t tid) const {
    if (expand) {
      if (s.ccid[vtx] == cur_ccid) {
        const std::uint64_t d = s.g->out_degree(vtx);
        s.inspected.add(tid, d);
        telemetry::metric_scope::count_edges(d);
        s.g->for_each_out_edge(vtx, [&](VertexId vj, weight_t) {
          q.push(hybrid_cc_visitor{vj, cur_ccid, false});
        });
      }
      return;
    }
    if (cur_ccid < s.ccid[vtx]) {
      s.ccid[vtx] = cur_ccid;
      s.updates.add(tid);
      const std::uint64_t d = s.g->out_degree(vtx);
      s.inspected.add(tid, d);
      telemetry::metric_scope::count_edges(d);
      s.g->for_each_out_edge(vtx, [&](VertexId vj, weight_t) {
        q.push(hybrid_cc_visitor{vj, cur_ccid, false});
      });
    }
  }
};

/// Hybrid CC for undirected (symmetric) graphs. Starts bottom-up — every
/// vertex's label is its own id, so the "frontier" is the whole graph and
/// Jacobi pull sweeps over in-edges relax it wholesale — then flips to the
/// asynchronous push tail once the per-sweep change count drops below
/// n/beta. Seeding the tail with only the final sweep's changed vertices is
/// sound: a double-buffered sweep that leaves both endpoints of an edge
/// unchanged has already ordered their labels, so every possible future
/// relaxation traces back to a changed vertex. Produces exactly async_cc's
/// labels (the min reachable id per vertex).
template <typename Graph>
cc_result<typename Graph::vertex_id> hybrid_cc(const Graph& g,
                                               traversal_options opts = {},
                                               hybrid_extra* extra = nullptr) {
  using V = typename Graph::vertex_id;
  if (!g.has_reverse()) {
    throw std::invalid_argument(
        "hybrid_cc: graph has no reverse view (ensure_reverse / "
        "open_reverse first)");
  }
  const double alpha = opts.hybrid_alpha;
  const double beta = opts.hybrid_beta;
  visitor_queue_config cfg =
      engine::process_default().pooled_config(std::move(opts));
  frontier_estimator est(alpha, beta);
  cfg.estimator = &est;

  const std::uint64_t n = g.num_vertices();
  hybrid_cc_state<Graph> s(g, cfg.num_threads);

  hybrid_extra detail_out;
  queue_run_stats agg;

  // Initialization to the own id is every vertex's first relaxation (the
  // async seeding does the same against the invalid init label), so the
  // aggregate work proxies stay well-defined: updates >= n, and
  // cc_result::work()'s label_corrections = updates - n never wraps.
  s.updates.add(0, n);
  agg.visits += n;

  std::vector<V> scratch(s.ccid);  // double buffer for the Jacobi sweeps
  std::vector<V> changed_last;
  std::uint64_t changed = n;
  std::uint64_t sweep_idx = 0;
  while (changed != 0 && (sweep_idx == 0 || est.stay_bottom_up(changed, n))) {
    const std::uint64_t inspected_before = s.inspected.total();
    std::vector<padded<std::vector<V>>> changed_lists(cfg.num_threads);
    std::vector<padded<std::uint64_t>> scanned(cfg.num_threads);
    detail::hybrid_parallel_ranges(
        cfg.pool, cfg.num_threads, n,
        [&](std::size_t tid, std::uint64_t b, std::uint64_t e) {
          std::uint64_t local_scanned = 0;
          for (std::uint64_t v = b; v < e; ++v) {
            V m = s.ccid[v];
            g.for_each_in_edge(static_cast<V>(v), [&](V u, weight_t) {
              ++local_scanned;
              if (s.ccid[u] < m) m = s.ccid[u];
            });
            scratch[v] = m;
            if (m < s.ccid[v]) {
              changed_lists[tid].value.push_back(static_cast<V>(v));
            }
          }
          scanned[tid].value += local_scanned;
        });
    std::swap(s.ccid, scratch);
    changed = 0;
    changed_last.clear();
    for (std::size_t t = 0; t < cfg.num_threads; ++t) {
      s.inspected.add(0, scanned[t].value);
      changed += changed_lists[t].value.size();
      changed_last.insert(changed_last.end(), changed_lists[t].value.begin(),
                          changed_lists[t].value.end());
    }
    s.updates.add(0, changed);
    agg.visits += changed;
    telemetry::metric_scope::count_edges(s.inspected.total() -
                                         inspected_before);
    ++sweep_idx;
    est.sample(changed);
    detail_out.phases.push_back({"bottom-up", sweep_idx,
                                 s.inspected.total() - inspected_before,
                                 changed});
  }

  if (changed != 0) {
    // Asynchronous push tail from the final sweep's changed set.
    ++detail_out.direction_switches;
    const std::uint64_t inspected_before = s.inspected.total();
    visitor_queue<hybrid_cc_visitor<V>, hybrid_cc_state<Graph>> q(cfg);
    for (const V v : changed_last) {
      q.push(hybrid_cc_visitor<V>{v, s.ccid[v], true});
    }
    detail::hybrid_accumulate(agg, q.run(s));
    detail_out.phases.push_back({"async-tail", sweep_idx + 1,
                                 s.inspected.total() - inspected_before, 0});
  }

  detail_out.edge_inspections = s.inspected.total();
  detail::hybrid_record_metrics(cfg.metrics, detail_out, "hybrid_cc");
  if (extra != nullptr) *extra = std::move(detail_out);

  cc_result<V> out;
  out.component = std::move(s.ccid);
  out.stats = std::move(agg);
  out.updates = s.updates.total();
  if (cfg.metrics != nullptr) out.work().record(*cfg.metrics, "hybrid_cc");
  return out;
}

}  // namespace asyncgt
