// Asynchronous PageRank by residual push — an extension demonstrating that
// the paper's prioritized visitor queue generalizes beyond traversal
// (the introduction motivates the traversals as "building blocks to many
// graph analysis algorithms"; residual-push PageRank is the canonical next
// block, and the one the authors' later HavoqGT line ships).
//
// Formulation (push/residual, a.k.a. Gauss-Seidel PageRank): every vertex v
// holds an accumulated rank and a residual. Initially rank = 0 and
// residual = (1 - alpha) / N. Flushing v moves its residual r into rank[v]
// and pushes alpha * r / outdeg(v) of new residual to each out-neighbour.
// Vertices are (re)flushed while their residual exceeds a tolerance. At
// quiescence, rank approximates the PageRank fixed point
//     PR = (1-alpha)/N + alpha * sum_{u->v} PR(u)/outdeg(u)
// with total error below tolerance * N / (1 - alpha) in L1.
//
// Dangling vertices (outdeg 0) absorb their residual into rank and push
// nothing: their mass leaves the system, matching the "dangling mass is
// dropped" PageRank convention, and the synchronous baseline
// (baselines/power_iteration.hpp) implements the identical convention so
// results are directly comparable.
//
// Queue mechanics: visitors *carry* residual deltas; the owner thread is the
// only writer of rank[v]/residual[v], so per-vertex state needs no atomics
// (same exclusivity argument as the traversals). Priority is the negated
// delta — bigger contributions flush first, which empirically minimizes
// total pushes, mirroring the shortest-first heuristic of the SSSP queue.
// Because deltas accumulate additively at the owner, the engine's batched
// cross-thread delivery changes only the order in which parcels arrive,
// not the mass conserved; final ranks stay within the documented tolerance
// for any flush_batch.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/traversal_result.hpp"
#include "graph/types.hpp"
#include "queue/visitor_queue.hpp"
#include "service/engine.hpp"

namespace asyncgt {

struct pagerank_options {
  double alpha = 0.85;      // damping factor
  /// Flush threshold per vertex. Push-based PageRank does
  /// O(1 / (tolerance * (1 - alpha))) flushes in the worst case — mass
  /// fragments into parcels barely above the threshold — so very small
  /// tolerances make the *work*, not just the precision, explode. 1e-6 to
  /// 1e-8 is the practical range; the L1 error is bounded by
  /// tolerance * N / (1 - alpha).
  double tolerance = 1e-6;
};

template <typename VertexId>
struct pagerank_result {
  std::vector<double> rank;
  queue_run_stats stats;
  std::uint64_t flushes = 0;  // vertex flushes (re-visits included)

  double total_rank() const {
    double sum = 0;
    for (const double r : rank) sum += r;
    return sum;
  }

  /// Vertex with the highest rank (first one on ties).
  VertexId top_vertex() const {
    VertexId best = 0;
    for (std::size_t v = 1; v < rank.size(); ++v) {
      if (rank[v] > rank[best]) best = static_cast<VertexId>(v);
    }
    return best;
  }
};

template <typename Graph>
struct pagerank_state {
  const Graph* g = nullptr;
  pagerank_options opt;
  std::vector<double> rank;
  std::vector<double> residual;
  sharded_counter flushes;

  pagerank_state(const Graph& graph, const pagerank_options& options,
                 std::size_t num_threads)
      : g(&graph),
        opt(options),
        rank(graph.num_vertices(), 0.0),
        residual(graph.num_vertices(), 0.0),
        flushes(num_threads) {}
};

template <typename VertexId>
struct pagerank_visitor {
  VertexId vtx{};
  double delta = 0.0;

  VertexId vertex() const noexcept { return vtx; }
  /// Smaller priority pops first; larger deltas should flush first.
  double priority() const noexcept { return -delta; }

  template <typename State, typename Queue>
  void visit(State& s, Queue& q, std::size_t tid) const {
    s.residual[vtx] += delta;
    if (s.residual[vtx] < s.opt.tolerance) return;
    const double r = s.residual[vtx];
    s.residual[vtx] = 0.0;
    s.rank[vtx] += r;
    s.flushes.add(tid);
    const std::uint64_t degree = s.g->out_degree(vtx);
    if (degree == 0) return;  // dangling: mass absorbed, nothing pushed
    const double share =
        s.opt.alpha * r / static_cast<double>(degree);
    s.g->for_each_out_edge(vtx, [&](VertexId vj, weight_t) {
      q.push(pagerank_visitor{vj, share});
    });
  }
};

/// Session API: submits a PageRank job to this engine; see submit_bfs.
template <typename Graph>
job<pagerank_result<typename Graph::vertex_id>> engine::submit_pagerank(
    const Graph& g, pagerank_options popt,
    std::optional<traversal_options> opts) {
  using V = typename Graph::vertex_id;
  if (popt.alpha <= 0.0 || popt.alpha >= 1.0) {
    throw std::invalid_argument("async_pagerank: alpha must be in (0, 1)");
  }
  if (popt.tolerance <= 0.0) {
    throw std::invalid_argument("async_pagerank: tolerance must be positive");
  }
  const double seed =
      (1.0 - popt.alpha) / static_cast<double>(std::max<std::uint64_t>(
                               g.num_vertices(), 1));
  return submit_seeded<pagerank_visitor<V>>(
      opts, pagerank_state<Graph>(g, popt, resolve_threads(opts)),
      g.num_vertices(),
      [seed](V v) { return pagerank_visitor<V>{v, seed}; },
      [](pagerank_state<Graph>& s, queue_run_stats stats) {
        pagerank_result<V> out;
        out.rank = std::move(s.rank);
        out.stats = std::move(stats);
        out.flushes = s.flushes.total();
        return out;
      },
      "pagerank");
}

/// Computes PageRank over any GraphStorage. `opt.tolerance` bounds the
/// residual left behind at every vertex; lower = more accurate = more work.
/// One-shot compatibility wrapper over the process-local engine.
template <typename Graph>
pagerank_result<typename Graph::vertex_id> async_pagerank(
    const Graph& g, pagerank_options opt = {}, traversal_options opts = {}) {
  return engine::process_default()
      .submit_pagerank(g, opt, std::move(opts))
      .get();
}

}  // namespace asyncgt
