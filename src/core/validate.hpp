// Independent result validation.
//
// These checkers verify traversal outputs against first principles rather
// than against another implementation, so they can validate the baselines
// too:
//  * BFS/SSSP: the distance array is a fixed point of relaxation (no edge
//    can improve any label), every reached vertex has a parent whose label
//    plus the connecting edge equals its own, and the source has label 0.
//  * CC: labels are constant within each edge's endpoints, every label is a
//    component member, and labels are minimal (label == smallest id in the
//    component, verified via a union-find pass).
#pragma once

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "core/traversal_result.hpp"
#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace asyncgt {

struct validation {
  bool ok = true;
  std::string error;  // first problem found, empty when ok

  static validation failure(std::string why) { return {false, std::move(why)}; }
  static validation success() { return {}; }
};

/// Validates a distance labelling for SSSP from `start` (BFS = weights 1,
/// which for_each_out_edge reports on unweighted graphs). `dist[v]` must be
/// infinite exactly for unreachable vertices; this is implied by fixed-point
/// + source checks for reachable ones, and by the parent check for finite
/// labels, but unreachability itself is established with a reference scan.
template <typename Graph>
validation validate_distances(const Graph& g,
                              typename Graph::vertex_id start,
                              const std::vector<dist_t>& dist,
                              bool unit_weights = false) {
  using V = typename Graph::vertex_id;
  const std::uint64_t n = g.num_vertices();
  if (dist.size() != n) return validation::failure("dist size mismatch");
  if (dist[start] != 0) return validation::failure("source distance not 0");

  // Fixed point: no edge may offer an improvement.
  for (V u = 0; u < n; ++u) {
    if (dist[u] == infinite_distance<dist_t>) continue;
    validation bad = validation::success();
    g.for_each_out_edge(u, [&](V v, weight_t w) {
      const dist_t step = unit_weights ? 1 : w;
      if (dist[u] + step < dist[v] && bad.ok) {
        bad = validation::failure(
            "edge " + std::to_string(u) + "->" + std::to_string(v) +
            " relaxable: " + std::to_string(dist[u]) + "+" +
            std::to_string(step) + " < " + std::to_string(dist[v]));
      }
    });
    if (!bad.ok) return bad;
  }

  // Attainability: every finite label must be witnessed by some in-edge
  // (or be the source). Scan edges once, marking vertices whose label is
  // exactly parent-label + weight.
  std::vector<char> witnessed(n, 0);
  witnessed[start] = 1;
  for (V u = 0; u < n; ++u) {
    if (dist[u] == infinite_distance<dist_t>) continue;
    g.for_each_out_edge(u, [&](V v, weight_t w) {
      const dist_t step = unit_weights ? 1 : w;
      if (dist[v] == dist[u] + step) witnessed[v] = 1;
    });
  }
  for (V v = 0; v < n; ++v) {
    if (dist[v] != infinite_distance<dist_t> && !witnessed[v]) {
      return validation::failure("vertex " + std::to_string(v) +
                                 " has unattainable label " +
                                 std::to_string(dist[v]));
    }
  }
  return validation::success();
}

/// Validates a parent (shortest-path tree) array against its labels.
template <typename Graph>
validation validate_parents(const Graph& g,
                            typename Graph::vertex_id start,
                            const std::vector<dist_t>& dist,
                            const std::vector<typename Graph::vertex_id>& par,
                            bool unit_weights = false) {
  using V = typename Graph::vertex_id;
  const std::uint64_t n = g.num_vertices();
  if (par.size() != n) return validation::failure("parent size mismatch");
  if (par[start] != start) return validation::failure("source parent != self");
  for (V v = 0; v < n; ++v) {
    if (v == start) continue;
    if (dist[v] == infinite_distance<dist_t>) {
      if (par[v] != invalid_vertex<V>) {
        return validation::failure("unreached vertex " + std::to_string(v) +
                                   " has a parent");
      }
      continue;
    }
    const V p = par[v];
    if (p >= n) {
      return validation::failure("vertex " + std::to_string(v) +
                                 " has out-of-range parent");
    }
    // The edge (p, v) must exist and be tight.
    bool tight = false;
    g.for_each_out_edge(p, [&](V t, weight_t w) {
      const dist_t step = unit_weights ? 1 : w;
      if (t == v && dist[p] + step == dist[v]) tight = true;
    });
    if (!tight) {
      return validation::failure("parent edge " + std::to_string(p) + "->" +
                                 std::to_string(v) + " not tight");
    }
  }
  return validation::success();
}

/// Validates component labels on an undirected (symmetric) graph.
template <typename Graph>
validation validate_components(
    const Graph& g, const std::vector<typename Graph::vertex_id>& cc) {
  using V = typename Graph::vertex_id;
  const std::uint64_t n = g.num_vertices();
  if (cc.size() != n) return validation::failure("cc size mismatch");

  // Labels constant across edges.
  for (V u = 0; u < n; ++u) {
    validation bad = validation::success();
    g.for_each_out_edge(u, [&](V v, weight_t) {
      if (cc[u] != cc[v] && bad.ok) {
        bad = validation::failure("edge " + std::to_string(u) + "-" +
                                  std::to_string(v) +
                                  " crosses component labels");
      }
    });
    if (!bad.ok) return bad;
  }

  // Minimality: build a union-find reference and compare the minimum member.
  std::vector<V> root(n);
  std::iota(root.begin(), root.end(), V{0});
  const auto find = [&](V x) {
    while (root[x] != x) {
      root[x] = root[root[x]];  // path halving
      x = root[x];
    }
    return x;
  };
  for (V u = 0; u < n; ++u) {
    g.for_each_out_edge(u, [&](V v, weight_t) {
      const V ru = find(u), rv = find(v);
      if (ru != rv) root[std::max(ru, rv)] = std::min(ru, rv);
    });
  }
  // After full union, find(x) is the minimum id in x's component because
  // unions always point the larger root at the smaller one.
  for (V v = 0; v < n; ++v) {
    if (cc[v] != find(v)) {
      return validation::failure(
          "vertex " + std::to_string(v) + " labelled " +
          std::to_string(cc[v]) + ", expected component minimum " +
          std::to_string(find(v)));
    }
  }
  return validation::success();
}

}  // namespace asyncgt
