// Checkpoint / restart for the asynchronous traversals.
//
// Semi-external traversals over large graphs run for hours (the paper's
// Table V rows reach 10,000+ seconds); a crash should not forfeit the work.
// Label-correcting algorithms make restart unusually clean: a partially
// converged label array is itself a valid intermediate state — labels only
// ever decrease toward the fixed point — so resuming means re-seeding the
// visitor queue from every already-labelled vertex and letting correction
// finish the job. No coordination with the crashed run is needed, and a
// checkpoint taken at ANY moment (even mid-relaxation) resumes to the exact
// same fixed point.
//
// File format: header (magic, algorithm tag, vertex count) + label array +
// parent array + CRC-32 of the payload. The CRC turns a torn write from a
// crash during checkpointing into a clean load error instead of silent
// corruption.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/async_bfs.hpp"
#include "core/async_sssp.hpp"
#include "core/traversal_result.hpp"
#include "graph/types.hpp"
#include "queue/traversal_abort.hpp"
#include "util/crc32.hpp"

namespace asyncgt {

inline constexpr std::uint32_t checkpoint_magic = 0x43504B31;  // "1KPC"

enum class checkpoint_kind : std::uint32_t {
  bfs = 1,
  sssp = 2,
};

namespace detail {

struct checkpoint_header {
  std::uint32_t magic = checkpoint_magic;
  std::uint32_t kind = 0;
  std::uint64_t num_vertices = 0;
  std::uint32_t vertex_width = 0;  // sizeof(VertexId)
  std::uint32_t reserved = 0;
};

struct file_closer {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using file_ptr = std::unique_ptr<std::FILE, file_closer>;

inline void write_all(std::FILE* f, const void* data, std::size_t bytes,
                      const std::string& path) {
  if (bytes != 0 && std::fwrite(data, 1, bytes, f) != bytes) {
    throw std::runtime_error("checkpoint: short write to '" + path + "'");
  }
}

inline void read_all(std::FILE* f, void* data, std::size_t bytes,
                     const std::string& path) {
  if (bytes != 0 && std::fread(data, 1, bytes, f) != bytes) {
    throw std::runtime_error("checkpoint: short read from '" + path + "'");
  }
}

}  // namespace detail

/// A loaded (or about-to-be-saved) traversal state snapshot.
template <typename VertexId>
struct traversal_checkpoint {
  checkpoint_kind kind = checkpoint_kind::bfs;
  std::vector<dist_t> label;     // level (BFS) or distance (SSSP)
  std::vector<VertexId> parent;
};

/// Writes the snapshot atomically-ish: payload then CRC last, so a torn
/// file fails the CRC on load.
template <typename VertexId>
void save_checkpoint(const std::string& path,
                     const traversal_checkpoint<VertexId>& cp) {
  if (cp.label.size() != cp.parent.size()) {
    throw std::invalid_argument("checkpoint: label/parent size mismatch");
  }
  detail::file_ptr f(std::fopen(path.c_str(), "wb"));
  if (!f) {
    throw std::runtime_error("checkpoint: cannot create '" + path + "'");
  }
  detail::checkpoint_header h;
  h.kind = static_cast<std::uint32_t>(cp.kind);
  h.num_vertices = cp.label.size();
  h.vertex_width = sizeof(VertexId);
  detail::write_all(f.get(), &h, sizeof(h), path);
  detail::write_all(f.get(), cp.label.data(),
                    cp.label.size() * sizeof(dist_t), path);
  detail::write_all(f.get(), cp.parent.data(),
                    cp.parent.size() * sizeof(VertexId), path);
  crc32 crc;
  crc.update(&h, sizeof(h));
  crc.update(cp.label.data(), cp.label.size() * sizeof(dist_t));
  crc.update(cp.parent.data(), cp.parent.size() * sizeof(VertexId));
  const std::uint32_t sum = crc.value();
  detail::write_all(f.get(), &sum, sizeof(sum), path);
  if (std::fflush(f.get()) != 0) {
    throw std::runtime_error("checkpoint: flush failed for '" + path + "'");
  }
}

/// Loads and CRC-verifies a snapshot. Throws on mismatch of magic, width,
/// kind, or checksum.
template <typename VertexId>
traversal_checkpoint<VertexId> load_checkpoint(const std::string& path,
                                               checkpoint_kind expected) {
  detail::file_ptr f(std::fopen(path.c_str(), "rb"));
  if (!f) {
    throw std::runtime_error("checkpoint: cannot open '" + path + "'");
  }
  detail::checkpoint_header h;
  detail::read_all(f.get(), &h, sizeof(h), path);
  if (h.magic != checkpoint_magic) {
    throw std::runtime_error("checkpoint: bad magic in '" + path + "'");
  }
  if (h.vertex_width != sizeof(VertexId)) {
    throw std::runtime_error("checkpoint: vertex width mismatch");
  }
  if (h.kind != static_cast<std::uint32_t>(expected)) {
    throw std::runtime_error("checkpoint: algorithm kind mismatch");
  }
  traversal_checkpoint<VertexId> cp;
  cp.kind = expected;
  cp.label.resize(h.num_vertices);
  cp.parent.resize(h.num_vertices);
  detail::read_all(f.get(), cp.label.data(),
                   cp.label.size() * sizeof(dist_t), path);
  detail::read_all(f.get(), cp.parent.data(),
                   cp.parent.size() * sizeof(VertexId), path);
  std::uint32_t stored = 0;
  detail::read_all(f.get(), &stored, sizeof(stored), path);
  crc32 crc;
  crc.update(&h, sizeof(h));
  crc.update(cp.label.data(), cp.label.size() * sizeof(dist_t));
  crc.update(cp.parent.data(), cp.parent.size() * sizeof(VertexId));
  if (crc.value() != stored) {
    throw std::runtime_error("checkpoint: CRC mismatch in '" + path +
                             "' (torn or corrupted file)");
  }
  return cp;
}

/// Resumes an SSSP (or BFS: unit weights) from a snapshot: install the
/// saved labels, then re-seed the queue by re-relaxing every out-edge of
/// every labelled vertex. Because labels are monotone, this converges to
/// the identical fixed point as the uninterrupted run.
template <typename Graph>
sssp_result<typename Graph::vertex_id> resume_sssp(
    const Graph& g, const traversal_checkpoint<typename Graph::vertex_id>& cp,
    traversal_options opts = {}) {
  using V = typename Graph::vertex_id;
  if (cp.label.size() != g.num_vertices()) {
    throw std::invalid_argument("resume_sssp: checkpoint size mismatch");
  }
  const visitor_queue_config cfg =
      engine::process_default().pooled_config(std::move(opts));
  sssp_state<Graph> state(g, cfg.num_threads);
  state.dist = cp.label;
  state.parent = cp.parent;
  visitor_queue<sssp_visitor<V>, sssp_state<Graph>> q(cfg);
  for (V v = 0; v < g.num_vertices(); ++v) {
    if (cp.label[v] == infinite_distance<dist_t>) continue;
    g.for_each_out_edge(v, [&](V vj, weight_t w) {
      q.push(sssp_visitor<V>{vj, v, cp.label[v] + w});
    });
  }
  auto stats = q.run(state);

  sssp_result<V> out;
  out.dist = std::move(state.dist);
  out.parent = std::move(state.parent);
  out.stats = std::move(stats);
  out.updates = state.updates.total();
  return out;
}

/// BFS with graceful degradation: like async_bfs, but if the run aborts
/// (traversal_aborted — e.g. a fatal semi-external I/O error), the partial
/// label state is saved to `checkpoint_path` as an emergency checkpoint
/// before the exception propagates. The snapshot is sound at any abort
/// point: the visitor writes its label BEFORE issuing the adjacency read,
/// so the start vertex is labelled before the first possible I/O fault, and
/// monotone label correction makes any partial array resume to the
/// identical fixed point (resume_bfs above).
template <typename Graph>
bfs_result<typename Graph::vertex_id> async_bfs_checkpointed(
    const Graph& g, typename Graph::vertex_id start,
    const std::string& checkpoint_path, traversal_options opts = {}) {
  using V = typename Graph::vertex_id;
  if (start >= g.num_vertices()) {
    throw std::out_of_range("async_bfs: start vertex out of range");
  }
  const visitor_queue_config cfg =
      engine::process_default().pooled_config(std::move(opts));
  bfs_state<Graph> state(g, cfg.num_threads);
  visitor_queue<bfs_visitor<V>, bfs_state<Graph>> q(cfg);
  q.push(bfs_visitor<V>{start, start, 0});
  queue_run_stats stats;
  try {
    stats = q.run(state);
  } catch (const traversal_aborted&) {
    traversal_checkpoint<V> cp;
    cp.kind = checkpoint_kind::bfs;
    cp.label = state.level;
    cp.parent = state.parent;
    save_checkpoint(checkpoint_path, cp);
    throw;
  }
  bfs_result<V> out;
  out.level = std::move(state.level);
  out.parent = std::move(state.parent);
  out.stats = std::move(stats);
  out.updates = state.updates.total();
  if (cfg.metrics != nullptr) out.work().record(*cfg.metrics, "bfs");
  return out;
}

/// SSSP twin of async_bfs_checkpointed: emergency checkpoint on abort, same
/// resume-to-identical-fixed-point argument (resume_sssp above).
template <typename Graph>
sssp_result<typename Graph::vertex_id> async_sssp_checkpointed(
    const Graph& g, typename Graph::vertex_id start,
    const std::string& checkpoint_path, traversal_options opts = {}) {
  using V = typename Graph::vertex_id;
  if (start >= g.num_vertices()) {
    throw std::out_of_range("async_sssp: start vertex out of range");
  }
  const visitor_queue_config cfg =
      engine::process_default().pooled_config(std::move(opts));
  sssp_state<Graph> state(g, cfg.num_threads);
  visitor_queue<sssp_visitor<V>, sssp_state<Graph>> q(cfg);
  q.push(sssp_visitor<V>{start, start, 0});
  queue_run_stats stats;
  try {
    stats = q.run(state);
  } catch (const traversal_aborted&) {
    traversal_checkpoint<V> cp;
    cp.kind = checkpoint_kind::sssp;
    cp.label = state.dist;
    cp.parent = state.parent;
    save_checkpoint(checkpoint_path, cp);
    throw;
  }
  sssp_result<V> out;
  out.dist = std::move(state.dist);
  out.parent = std::move(state.parent);
  out.stats = std::move(stats);
  out.updates = state.updates.total();
  if (cfg.metrics != nullptr) out.work().record(*cfg.metrics, "sssp");
  return out;
}

/// BFS resume: unit-weight specialization with its own visitor type.
template <typename Graph>
bfs_result<typename Graph::vertex_id> resume_bfs(
    const Graph& g, const traversal_checkpoint<typename Graph::vertex_id>& cp,
    traversal_options opts = {}) {
  using V = typename Graph::vertex_id;
  if (cp.label.size() != g.num_vertices()) {
    throw std::invalid_argument("resume_bfs: checkpoint size mismatch");
  }
  const visitor_queue_config cfg =
      engine::process_default().pooled_config(std::move(opts));
  bfs_state<Graph> state(g, cfg.num_threads);
  state.level = cp.label;
  state.parent = cp.parent;
  visitor_queue<bfs_visitor<V>, bfs_state<Graph>> q(cfg);
  for (V v = 0; v < g.num_vertices(); ++v) {
    if (cp.label[v] == infinite_distance<dist_t>) continue;
    g.for_each_out_edge(v, [&](V vj, weight_t) {
      q.push(bfs_visitor<V>{vj, v, cp.label[v] + 1});
    });
  }
  auto stats = q.run(state);

  bfs_result<V> out;
  out.level = std::move(state.level);
  out.parent = std::move(state.parent);
  out.stats = std::move(stats);
  out.updates = state.updates.total();
  return out;
}

}  // namespace asyncgt
