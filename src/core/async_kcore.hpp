// Asynchronous k-core decomposition — a second extension built on the
// visitor queue, using the h-index fixed-point formulation (Lü, Zhou et al.:
// coreness(v) is the unique fixed point of bound(v) = H({bound(u) : u ∈
// N(v)}), where H is the h-index operator, starting from bound = degree).
//
// Asynchrony fits naturally: bounds only ever decrease, the h-operator is
// monotone, so updates may be applied in any order and still converge to
// the same fixed point — the same label-correcting structure as the
// paper's traversals, with "smaller bound" playing the role of "shorter
// path". A visitor recomputes its vertex's h-index from its neighbours'
// current bounds; if the bound drops, all neighbours are notified.
//
// Unlike the traversal states, the h-index computation must *read* the
// bounds of neighbour vertices owned by other threads, so the bound array
// is std::atomic (relaxed loads/stores suffice: the sequence of values at
// each vertex is monotone decreasing and any stale read only delays, never
// breaks, convergence). Requires an undirected (symmetric) graph.
//
// Batched delivery (queue/mailbox.hpp) only adds latency between a bound
// drop and the neighbour notification arriving — which, like a stale
// atomic read, delays but cannot break the monotone fixed point.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/traversal_result.hpp"
#include "graph/types.hpp"
#include "queue/visitor_queue.hpp"
#include "service/engine.hpp"

namespace asyncgt {

template <typename VertexId>
struct kcore_result {
  std::vector<std::uint32_t> core;  // coreness of every vertex
  queue_run_stats stats;
  std::uint64_t updates = 0;

  std::uint32_t max_core() const {
    std::uint32_t best = 0;
    for (const auto c : core) best = std::max(best, c);
    return best;
  }
};

template <typename Graph>
struct kcore_state {
  const Graph* g = nullptr;
  std::vector<std::atomic<std::uint32_t>> bound;
  sharded_counter updates;

  kcore_state(const Graph& graph, std::size_t num_threads)
      : g(&graph), bound(graph.num_vertices()), updates(num_threads) {
    using V = typename Graph::vertex_id;
    for (V v = 0; v < graph.num_vertices(); ++v) {
      bound[v].store(static_cast<std::uint32_t>(graph.out_degree(v)),
                     std::memory_order_relaxed);
    }
  }
};

template <typename VertexId>
struct kcore_visitor {
  VertexId vtx{};
  std::uint32_t hint = 0;  // sender's bound; prioritizes small bounds

  VertexId vertex() const noexcept { return vtx; }
  std::uint32_t priority() const noexcept { return hint; }

  template <typename State, typename Queue>
  void visit(State& s, Queue& q, std::size_t tid) const {
    const std::uint32_t current =
        s.bound[vtx].load(std::memory_order_relaxed);
    if (current == 0) return;
    // h-index of neighbour bounds, capped at `current`: count[i] = how many
    // neighbours have bound >= i, h = max i with count >= i.
    thread_local std::vector<std::uint32_t> count;
    count.assign(current + 1, 0);
    s.g->for_each_out_edge(vtx, [&](VertexId u, weight_t) {
      const std::uint32_t b = std::min(
          s.bound[u].load(std::memory_order_relaxed), current);
      ++count[b];
    });
    std::uint32_t cumulative = 0;
    std::uint32_t h = 0;
    for (std::uint32_t i = current; i > 0; --i) {
      cumulative += count[i];
      if (cumulative >= i) {
        h = i;
        break;
      }
    }
    if (h < current) {
      s.bound[vtx].store(h, std::memory_order_relaxed);
      s.updates.add(tid);
      // Neighbours whose bound exceeds ours may now be reducible.
      s.g->for_each_out_edge(vtx, [&](VertexId u, weight_t) {
        if (s.bound[u].load(std::memory_order_relaxed) > h) {
          q.push(kcore_visitor{u, h});
        }
      });
    }
  }
};

/// Session API: submits a k-core job to this engine; see submit_bfs.
template <typename Graph>
job<kcore_result<typename Graph::vertex_id>> engine::submit_kcore(
    const Graph& g, std::optional<traversal_options> opts) {
  using V = typename Graph::vertex_id;
  return submit_seeded<kcore_visitor<V>>(
      opts, kcore_state<Graph>(g, resolve_threads(opts)), g.num_vertices(),
      [&g](V v) {
        return kcore_visitor<V>{v,
                                static_cast<std::uint32_t>(g.out_degree(v))};
      },
      [&g](kcore_state<Graph>& s, queue_run_stats stats) {
        kcore_result<V> out;
        out.core.resize(g.num_vertices());
        for (V v = 0; v < g.num_vertices(); ++v) {
          out.core[v] = s.bound[v].load(std::memory_order_relaxed);
        }
        out.stats = std::move(stats);
        out.updates = s.updates.total();
        return out;
      },
      "kcore");
}

/// Computes the coreness of every vertex of a symmetric (undirected) graph.
/// One-shot compatibility wrapper over the process-local engine.
template <typename Graph>
kcore_result<typename Graph::vertex_id> async_kcore(
    const Graph& g, traversal_options opts = {}) {
  return engine::process_default().submit_kcore(g, std::move(opts)).get();
}

}  // namespace asyncgt
