// Asynchronous Single Source Shortest Path (paper Algorithms 1 and 2).
//
// A Bellman-Ford / Dijkstra hybrid: label-correcting like Bellman-Ford
// (correctness never depends on visit order), priority-ordered like Dijkstra
// (each queue visits its locally shortest path first). Because there is no
// global synchronization, a vertex may be visited several times with
// successively shorter candidate paths — exactly the behaviour the paper
// walks through in Figure 3 (reproduced in tests/core/sssp_paper_example).
//
// The visitor is Algorithm 2 verbatim:
//   if cur_dist < dist[v]:
//     dist[v] = cur_dist; parent[v] = cur_parent            (relax)
//     for each out-edge (v, vj, w): push visitor(vj, cur_dist + w, v)
//
// Data-race freedom: dist/parent entries for v are read and written only by
// the visitor for v, which always executes on the hash-owner thread of v.
// The `Queue` parameter of visit() is the engine's per-worker handle: the
// per-relaxation push below appends to a thread-local outbox buffer
// (lock-free) and crosses threads in flush_batch-sized batches — delivery
// order is a heuristic anyway, label correction absorbs any reordering.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <utility>

#include "core/traversal_result.hpp"
#include "graph/types.hpp"
#include "queue/visitor_queue.hpp"
#include "service/engine.hpp"

namespace asyncgt {

template <typename Graph>
struct sssp_state {
  const Graph* g = nullptr;
  std::vector<dist_t> dist;
  std::vector<typename Graph::vertex_id> parent;
  sharded_counter updates;

  sssp_state(const Graph& graph, std::size_t num_threads)
      : g(&graph),
        dist(graph.num_vertices(), infinite_distance<dist_t>),
        parent(graph.num_vertices(),
               invalid_vertex<typename Graph::vertex_id>),
        updates(num_threads) {}
};

template <typename VertexId>
struct sssp_visitor {
  VertexId vtx{};
  VertexId cur_parent{};
  dist_t cur_dist = 0;

  VertexId vertex() const noexcept { return vtx; }
  dist_t priority() const noexcept { return cur_dist; }

  template <typename State, typename Queue>
  void visit(State& s, Queue& q, std::size_t tid) const {
    if (cur_dist < s.dist[vtx]) {
      s.dist[vtx] = cur_dist;  // relax vertex information
      s.parent[vtx] = cur_parent;
      s.updates.add(tid);
      telemetry::metric_scope::count_edges(s.g->out_degree(vtx));
      s.g->for_each_out_edge(vtx, [&](VertexId vj, weight_t w) {
        q.push(sssp_visitor{vj, vtx, cur_dist + w});
      });
    }
  }
};

/// Session API: submits an SSSP job to this engine; see submit_bfs.
template <typename Graph>
job<sssp_result<typename Graph::vertex_id>> engine::submit_sssp(
    const Graph& g, typename Graph::vertex_id start,
    std::optional<traversal_options> opts) {
  using V = typename Graph::vertex_id;
  if (start >= g.num_vertices()) {
    throw std::out_of_range("async_sssp: start vertex out of range");
  }
  telemetry::metrics_registry* metrics = resolve_metrics(opts);
  return submit_traversal<sssp_visitor<V>>(
      opts, sssp_state<Graph>(g, resolve_threads(opts)),
      [start](auto& q, sssp_state<Graph>&) {
        q.push(sssp_visitor<V>{start, start, 0});
      },
      [metrics](sssp_state<Graph>& s, queue_run_stats stats) {
        sssp_result<V> out;
        out.dist = std::move(s.dist);
        out.parent = std::move(s.parent);
        out.stats = std::move(stats);
        out.updates = s.updates.total();
        if (metrics != nullptr) out.work().record(*metrics, "sssp");
        return out;
      },
      "sssp");
}

/// Computes SSSP from `start` over any GraphStorage. Edge weights must be
/// non-negative (u32 by construction). Throws if `start` is out of range.
/// One-shot compatibility wrapper over the process-local engine.
template <typename Graph>
sssp_result<typename Graph::vertex_id> async_sssp(
    const Graph& g, typename Graph::vertex_id start,
    traversal_options opts = {}) {
  return engine::process_default()
      .submit_sssp(g, start, std::move(opts))
      .get();
}

}  // namespace asyncgt
