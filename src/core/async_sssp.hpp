// Asynchronous Single Source Shortest Path (paper Algorithms 1 and 2).
//
// A Bellman-Ford / Dijkstra hybrid: label-correcting like Bellman-Ford
// (correctness never depends on visit order), priority-ordered like Dijkstra
// (each queue visits its locally shortest path first). Because there is no
// global synchronization, a vertex may be visited several times with
// successively shorter candidate paths — exactly the behaviour the paper
// walks through in Figure 3 (reproduced in tests/core/sssp_paper_example).
//
// The visitor is Algorithm 2 verbatim:
//   if cur_dist < dist[v]:
//     dist[v] = cur_dist; parent[v] = cur_parent            (relax)
//     for each out-edge (v, vj, w): push visitor(vj, cur_dist + w, v)
//
// Data-race freedom: dist/parent entries for v are read and written only by
// the visitor for v, which always executes on the hash-owner thread of v.
// The `Queue` parameter of visit() is the engine's per-worker handle: the
// per-relaxation push below appends to a thread-local outbox buffer
// (lock-free) and crosses threads in flush_batch-sized batches — delivery
// order is a heuristic anyway, label correction absorbs any reordering.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "core/traversal_result.hpp"
#include "graph/types.hpp"
#include "queue/visitor_queue.hpp"

namespace asyncgt {

template <typename Graph>
struct sssp_state {
  const Graph* g = nullptr;
  std::vector<dist_t> dist;
  std::vector<typename Graph::vertex_id> parent;
  sharded_counter updates;

  sssp_state(const Graph& graph, std::size_t num_threads)
      : g(&graph),
        dist(graph.num_vertices(), infinite_distance<dist_t>),
        parent(graph.num_vertices(),
               invalid_vertex<typename Graph::vertex_id>),
        updates(num_threads) {}
};

template <typename VertexId>
struct sssp_visitor {
  VertexId vtx{};
  VertexId cur_parent{};
  dist_t cur_dist = 0;

  VertexId vertex() const noexcept { return vtx; }
  dist_t priority() const noexcept { return cur_dist; }

  template <typename State, typename Queue>
  void visit(State& s, Queue& q, std::size_t tid) const {
    if (cur_dist < s.dist[vtx]) {
      s.dist[vtx] = cur_dist;  // relax vertex information
      s.parent[vtx] = cur_parent;
      s.updates.add(tid);
      s.g->for_each_out_edge(vtx, [&](VertexId vj, weight_t w) {
        q.push(sssp_visitor{vj, vtx, cur_dist + w});
      });
    }
  }
};

/// Computes SSSP from `start` over any GraphStorage. Edge weights must be
/// non-negative (u32 by construction). Throws if `start` is out of range.
template <typename Graph>
sssp_result<typename Graph::vertex_id> async_sssp(
    const Graph& g, typename Graph::vertex_id start,
    visitor_queue_config cfg = {}) {
  using V = typename Graph::vertex_id;
  if (start >= g.num_vertices()) {
    throw std::out_of_range("async_sssp: start vertex out of range");
  }
  sssp_state<Graph> state(g, cfg.num_threads);
  visitor_queue<sssp_visitor<V>, sssp_state<Graph>> q(cfg);
  q.push(sssp_visitor<V>{start, start, 0});
  auto stats = q.run(state);

  sssp_result<V> out;
  out.dist = std::move(state.dist);
  out.parent = std::move(state.parent);
  out.stats = std::move(stats);
  out.updates = state.updates.total();
  if (cfg.metrics != nullptr) out.work().record(*cfg.metrics, "sssp");
  return out;
}

}  // namespace asyncgt
