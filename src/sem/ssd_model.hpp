// Simulated NAND-flash storage device.
//
// Substitution for the paper's physical SSD testbeds (4x FusionIO SLC PCI-E,
// 4x Intel X25-M, 4x Corsair P128 — §IV-C). The paper's semi-external result
// rests on two device behaviours:
//   1. each random read has a fixed service latency (tens–hundreds of µs,
//      vs. ~10 ms for rotating disks), and
//   2. the device services a bounded number of requests concurrently
//      (channel/NCQ parallelism), so aggregate IOPS grows with the number of
//      requesting threads until it plateaus at concurrency/latency — the
//      curve of the paper's Figure 1.
//
// The model implements exactly that: `channels` independent service lines,
// each serializing its requests. A request reserves the next free slot on a
// round-robin channel — deadline = max(now, channel_free_at) + service_time —
// then sleeps until its deadline. Because deadlines accumulate on the
// channel clock, throughput converges to channels/latency even if the OS
// oversleeps individual waits, and a single requester sees the pure service
// latency. Multi-block requests pay the random-read latency once plus a
// (cheaper) sequential transfer per additional block, and writes pay a
// configurable multiple of the read latency (flash write asymmetry, §II-D).
//
// `time_scale` shrinks all latencies by a constant factor so the benches
// finish quickly on small graphs; every ratio the experiments report
// (device A vs device B, SEM vs in-memory baseline measured on the same
// scale) is invariant to it.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/cache_line.hpp"

namespace asyncgt::sem {

struct ssd_params {
  std::string name = "null";
  double read_latency_us = 100.0;   // random-read service time per request
  double write_latency_us = 300.0;  // write asymmetry (§II-D)
  double seq_block_us = 2.0;        // each extra contiguous block in a request
  std::uint32_t channels = 8;       // internal parallelism (plateau = ch/lat)
  std::uint32_t block_bytes = 4096; // device read granularity
  double time_scale = 1.0;          // global latency multiplier

  /// The saturated random-read throughput this device converges to.
  double plateau_iops() const {
    return static_cast<double>(channels) * 1e6 /
           (read_latency_us * time_scale);
  }
};

struct ssd_counters {
  std::uint64_t reads = 0;        // read requests
  std::uint64_t writes = 0;       // write requests
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t read_blocks = 0;  // device blocks transferred by reads
  std::uint64_t max_inflight = 0; // peak simultaneous requests (queue depth)
};

class ssd_model {
 public:
  explicit ssd_model(ssd_params params);

  ssd_model(const ssd_model&) = delete;
  ssd_model& operator=(const ssd_model&) = delete;

  /// Blocks the calling thread for the simulated duration of a random read
  /// of `bytes` bytes. Call around (or instead of) the real pread.
  void read(std::uint64_t bytes);

  /// Simulated write (used by the on-disk graph builder accounting).
  void write(std::uint64_t bytes);

  const ssd_params& params() const noexcept { return params_; }
  ssd_counters counters() const;
  void reset_counters();

  /// Requests currently queued or in service — the simulated device queue
  /// depth. The telemetry sampler plots this to show whether thread
  /// oversubscription actually keeps the device saturated (paper Fig. 1).
  std::uint64_t inflight() const noexcept {
    return inflight_.load(std::memory_order_relaxed);
  }

 private:
  using clock = std::chrono::steady_clock;

  struct channel {
    std::mutex mu;
    clock::time_point free_at{};
  };

  clock::time_point reserve(double service_us);

  ssd_params params_;
  std::vector<std::unique_ptr<channel>> channels_;
  std::atomic<std::uint64_t> next_channel_{0};
  alignas(cache_line_size) std::atomic<std::uint64_t> inflight_{0};
  mutable std::mutex counter_mu_;
  ssd_counters counters_;
};

}  // namespace asyncgt::sem
