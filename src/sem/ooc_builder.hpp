// Out-of-core graph builder: construct an on-disk .agt CSR from an edge
// stream using only O(V) memory.
//
// This closes the loop the paper's semi-external setting implies: a graph
// whose edges do not fit in RAM cannot be built by the in-memory
// build_csr() either. The builder keeps exactly the semi-external memory
// footprint — one degree/offset array over the vertices — and pushes the
// O(E) work through the external sorter:
//
//   add_edge()*  ->  ext_sorter (spilled sorted runs)
//   finalize()   ->  k-way merge -> dedup/self-loop filter -> clean temp
//                    file + degree counts -> .agt header/offsets ->
//                    sequential target (and weight) passes
//
// The output is byte-identical to write_graph(build_csr(...)) for the same
// input edges and options, which the tests assert.
#pragma once

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/graph_io.hpp"
#include "graph/types.hpp"
#include "sem/ext_sorter.hpp"

namespace asyncgt::sem {

struct ooc_build_options {
  std::uint64_t memory_budget_bytes = 64 << 20;
  std::filesystem::path scratch_dir =
      std::filesystem::temp_directory_path() / "asyncgt_ooc";
  bool remove_self_loops = true;
  bool remove_duplicates = true;
  bool symmetrize = false;
  /// Also emit the on-disk reverse edge file at reverse_path_for(output):
  /// a second external sort of the cleaned edges keyed by (dst, src), plus
  /// a second O(V) in-degree array — the footprint stays semi-external.
  /// The result is byte-identical to write_graph(transpose) of the same
  /// graph, and is what sem_csr::open_reverse() serves.
  bool emit_reverse = false;
};

struct ooc_build_stats {
  std::uint64_t input_edges = 0;   // after symmetrization
  std::uint64_t output_edges = 0;  // after dedup / self-loop removal
  std::uint64_t sort_runs = 0;
  std::uint64_t spilled_bytes = 0;
};

template <typename VertexId>
class ooc_graph_builder {
 public:
  ooc_graph_builder(std::uint64_t num_vertices, std::string output_path,
                    ooc_build_options opt = {})
      : n_(num_vertices),
        output_path_(std::move(output_path)),
        opt_(std::move(opt)),
        sorter_(opt_.memory_budget_bytes, opt_.scratch_dir),
        degree_(num_vertices, 0) {
    if (num_vertices >= invalid_vertex<VertexId>) {
      throw std::invalid_argument("ooc_builder: vertex count exceeds ids");
    }
  }

  void add_edge(VertexId src, VertexId dst, weight_t weight = 1) {
    if (src >= n_ || dst >= n_) {
      throw std::invalid_argument("ooc_builder: edge endpoint out of range");
    }
    sorter_.add({src, dst, weight});
    if (opt_.symmetrize) sorter_.add({dst, src, weight});
    if (weight != 1) weighted_ = true;
  }

  /// Sorts, dedups, and writes the .agt file. Callable once.
  ooc_build_stats finalize() {
    if (finalized_) throw std::logic_error("ooc_builder: already finalized");
    finalized_ = true;

    ooc_build_stats stats;
    stats.input_edges = sorter_.stats().records;

    // Phase 1: merge the sorted stream, filtering, into a clean temp file
    // while counting degrees.
    std::filesystem::create_directories(opt_.scratch_dir);
    const auto clean_path = opt_.scratch_dir / "clean_edges.bin";
    {
      file_ptr clean(std::fopen(clean_path.string().c_str(), "wb"));
      if (!clean) {
        throw std::runtime_error("ooc_builder: cannot create " +
                                 clean_path.string());
      }
      bool have_prev = false;
      record prev{};
      sorter_.merge([&](const record& r) {
        if (opt_.remove_self_loops && r.src == r.dst) return;
        if (opt_.remove_duplicates && have_prev && prev.src == r.src &&
            prev.dst == r.dst) {
          return;  // sorted by (src,dst,weight): first copy = lowest weight
        }
        have_prev = true;
        prev = r;
        if (std::fwrite(&r, sizeof(record), 1, clean.get()) != 1) {
          throw std::runtime_error("ooc_builder: short write to clean file");
        }
        ++degree_[r.src];
        ++stats.output_edges;
      });
    }
    stats.sort_runs = sorter_.stats().runs;
    stats.spilled_bytes = sorter_.stats().spilled_bytes;

    // Phases 2+3: header + offsets (prefix sums of the degree array), then
    // sequential column passes over the clean file.
    const std::uint64_t m = stats.output_edges;
    write_agt(output_path_, clean_path, degree_, m);

    // Optional reverse pass: re-sort the already-clean edges keyed by
    // (dst, src) — one more external sort and one more O(V) degree array —
    // and write the transpose as an ordinary .agt next to the output. No
    // filtering here: dedup/self-loop removal already happened, and the
    // transpose of a unique edge set is unique.
    if (opt_.emit_reverse) {
      std::vector<std::uint64_t> in_degree(n_, 0);
      ext_sorter<record> rsorter(opt_.memory_budget_bytes, opt_.scratch_dir);
      {
        file_ptr in(std::fopen(clean_path.string().c_str(), "rb"));
        if (!in) {
          throw std::runtime_error("ooc_builder: cannot reopen clean file");
        }
        std::vector<record> records(4096);
        for (;;) {
          const std::size_t got = std::fread(records.data(), sizeof(record),
                                             records.size(), in.get());
          if (got == 0) break;
          for (std::size_t i = 0; i < got; ++i) {
            rsorter.add({records[i].dst, records[i].src, records[i].weight});
            ++in_degree[records[i].dst];
          }
        }
      }
      const auto clean_rev_path = opt_.scratch_dir / "clean_edges_rev.bin";
      {
        file_ptr rclean(std::fopen(clean_rev_path.string().c_str(), "wb"));
        if (!rclean) {
          throw std::runtime_error("ooc_builder: cannot create " +
                                   clean_rev_path.string());
        }
        rsorter.merge([&](const record& r) {
          if (std::fwrite(&r, sizeof(record), 1, rclean.get()) != 1) {
            throw std::runtime_error(
                "ooc_builder: short write to reverse clean file");
          }
        });
      }
      write_agt(reverse_path_for(output_path_), clean_rev_path, in_degree, m);
      std::error_code rec;
      std::filesystem::remove(clean_rev_path, rec);
    }

    std::error_code ec;
    std::filesystem::remove(clean_path, ec);
    return stats;
  }

 private:
  struct record {
    VertexId src;
    VertexId dst;
    weight_t weight;

    friend bool operator<(const record& a, const record& b) {
      if (a.src != b.src) return a.src < b.src;
      if (a.dst != b.dst) return a.dst < b.dst;
      return a.weight < b.weight;
    }
  };

  struct file_closer {
    void operator()(std::FILE* f) const noexcept {
      if (f != nullptr) std::fclose(f);
    }
  };
  using file_ptr = std::unique_ptr<std::FILE, file_closer>;

  static void write_or_throw(std::FILE* f, const void* data,
                             std::size_t bytes) {
    if (bytes != 0 && std::fwrite(data, 1, bytes, f) != bytes) {
      throw std::runtime_error("ooc_builder: short write");
    }
  }

  // Phases 2+3 for one output file: header, streamed prefix-sum offsets
  // (never materializing a second O(V) array), then sequential column
  // passes over a clean (sorted) edge file. Shared by the forward and
  // reverse emission paths.
  void write_agt(const std::string& path,
                 const std::filesystem::path& clean_path,
                 const std::vector<std::uint64_t>& degrees, std::uint64_t m) {
    file_ptr out(std::fopen(path.c_str(), "wb"));
    if (!out) {
      throw std::runtime_error("ooc_builder: cannot create " + path);
    }
    agt_header h;
    h.flags = (weighted_ ? 1u : 0u) | (sizeof(VertexId) == 8 ? 2u : 0u);
    h.num_vertices = n_;
    h.num_edges = m;
    write_or_throw(out.get(), &h, sizeof(h));
    std::uint64_t running = 0;
    // Stream the offsets without materializing a second array: emit the
    // running sum, then fold each degree in.
    std::vector<std::uint64_t> chunk;
    chunk.reserve(1 << 16);
    chunk.push_back(0);
    for (std::uint64_t v = 0; v < n_; ++v) {
      running += degrees[v];
      chunk.push_back(running);
      if (chunk.size() == (1 << 16)) {
        write_or_throw(out.get(), chunk.data(),
                       chunk.size() * sizeof(std::uint64_t));
        chunk.clear();
      }
    }
    if (!chunk.empty()) {
      write_or_throw(out.get(), chunk.data(),
                     chunk.size() * sizeof(std::uint64_t));
    }
    stream_column(clean_path, out.get(), /*weights_pass=*/false);
    if (weighted_) {
      stream_column(clean_path, out.get(), /*weights_pass=*/true);
    }
    if (std::fflush(out.get()) != 0) {
      throw std::runtime_error("ooc_builder: flush failed");
    }
  }

  void stream_column(const std::filesystem::path& clean_path, std::FILE* out,
                     bool weights_pass) {
    file_ptr in(std::fopen(clean_path.string().c_str(), "rb"));
    if (!in) {
      throw std::runtime_error("ooc_builder: cannot reopen clean file");
    }
    std::vector<record> records(4096);
    std::vector<VertexId> targets;
    std::vector<weight_t> weights;
    for (;;) {
      const std::size_t got = std::fread(records.data(), sizeof(record),
                                         records.size(), in.get());
      if (got == 0) break;
      if (weights_pass) {
        weights.clear();
        for (std::size_t i = 0; i < got; ++i) {
          weights.push_back(records[i].weight);
        }
        write_or_throw(out, weights.data(), got * sizeof(weight_t));
      } else {
        targets.clear();
        for (std::size_t i = 0; i < got; ++i) {
          targets.push_back(records[i].dst);
        }
        write_or_throw(out, targets.data(), got * sizeof(VertexId));
      }
    }
  }

  std::uint64_t n_;
  std::string output_path_;
  ooc_build_options opt_;
  ext_sorter<record> sorter_;
  std::vector<std::uint64_t> degree_;  // the O(V) semi-external footprint
  bool weighted_ = false;
  bool finalized_ = false;
};

}  // namespace asyncgt::sem
