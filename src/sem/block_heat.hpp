// Per-block access/miss heat map for the semi-external path.
//
// Every adjacency read on a sem_csr touches a run of device blocks; which
// blocks run hot decides whether the block_cache's budget is spent well and
// whether semi-sort locality is doing its job. A block_heat records, per
// block, how many times it was touched and how many of those touches missed
// the simulated page cache — dense arrays of relaxed atomics, so recording
// from hundreds of oversubscribed reader threads costs two uncontended adds
// and the hot path needs no locks or hashing.
//
// Attach one via sem_csr::set_block_heat. Recording happens inside the same
// device-charging walk that probes the cache, so heat misses agree exactly
// with the cache's own miss counters (the probe that decides the charge is
// the probe that is recorded — a separate peek could disagree when a probe
// in the same run evicts a later block). With no cache attached every touch
// is a miss, matching full-charge accounting. top_k() ranks blocks by
// access count for the bench reports' hot-block table.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace asyncgt::sem {

class block_heat {
 public:
  struct entry {
    std::uint64_t block = 0;
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
  };

  /// `num_blocks` bounds the tracked block-id range; `block_bytes` is the
  /// granularity used when no ssd_model supplies one (sem_csr prefers the
  /// device's). Touches at or past num_blocks land on the out-of-range
  /// counter instead of being dropped silently.
  explicit block_heat(std::uint64_t num_blocks,
                      std::uint64_t block_bytes = 4096)
      : block_bytes_(block_bytes ? block_bytes : 4096),
        accesses_(num_blocks),
        misses_(num_blocks) {}

  std::uint64_t num_blocks() const noexcept { return accesses_.size(); }
  std::uint64_t block_bytes() const noexcept { return block_bytes_; }

  /// One touch of `block`; `miss` = the touch was charged to the device.
  void record(std::uint64_t block, bool miss) noexcept {
    if (block >= accesses_.size()) {
      out_of_range_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    accesses_[block].fetch_add(1, std::memory_order_relaxed);
    if (miss) misses_[block].fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t accesses(std::uint64_t block) const noexcept {
    return block < accesses_.size()
               ? accesses_[block].load(std::memory_order_relaxed)
               : 0;
  }
  std::uint64_t misses(std::uint64_t block) const noexcept {
    return block < misses_.size()
               ? misses_[block].load(std::memory_order_relaxed)
               : 0;
  }
  std::uint64_t out_of_range() const noexcept {
    return out_of_range_.load(std::memory_order_relaxed);
  }

  /// Sums across all blocks (scrape-time walk, like the registries).
  std::uint64_t total_accesses() const noexcept;
  std::uint64_t total_misses() const noexcept;
  /// Blocks touched at least once.
  std::uint64_t blocks_touched() const noexcept;

  /// The `k` hottest blocks by access count (ties broken by lower block id),
  /// hottest first; fewer when fewer were touched.
  std::vector<entry> top_k(std::size_t k) const;

  void reset() noexcept;

 private:
  std::uint64_t block_bytes_;
  std::vector<std::atomic<std::uint64_t>> accesses_;
  std::vector<std::atomic<std::uint64_t>> misses_;
  std::atomic<std::uint64_t> out_of_range_{0};
};

}  // namespace asyncgt::sem
