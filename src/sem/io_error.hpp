// Storage-failure vocabulary for the semi-external I/O layer.
//
// The paper's SEM runs take hours (Table V exceeds 10,000 s) on flash
// devices whose entire value proposition is surviving millions of concurrent
// random reads. At that scale transient read failures are an expected
// operating condition, not an exceptional one, so the I/O layer needs a
// failure model rather than a bare std::runtime_error:
//
//   * io_error carries the full context of a failed positional read (path,
//     offset, byte count, errno, how many retries were burned) so the engine
//     can surface "worker 7 gave up on offset 0x1c00 after 4 retries: EIO"
//     instead of "unexpected EOF".
//   * is_transient_errno classifies errnos into retry-worthy (the device or
//     kernel may succeed on a second attempt) and fatal (retrying cannot
//     help: the descriptor or arguments are wrong).
//   * io_retry_policy bounds the recovery attempt: capped exponential
//     backoff with jitter, so hundreds of oversubscribed threads hitting a
//     hiccuping device do not retry in lockstep.
//
// Consumed by edge_file (the retry loop lives there) and by the fault
// injector (docs/robustness.md covers the whole failure model).
#pragma once

#include <cerrno>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace asyncgt::sem {

/// A positional read failed permanently (fatal errno, retry budget
/// exhausted, or out-of-range request). `retries` counts the re-attempts
/// that were burned before giving up; `error_code` is 0 when the failure is
/// not an errno (bounds violation, unexpected EOF).
class io_error : public std::runtime_error {
 public:
  io_error(const std::string& what, std::string path, std::uint64_t offset,
           std::uint64_t bytes, int error_code, std::uint32_t retries)
      : std::runtime_error(what),
        path_(std::move(path)),
        offset_(offset),
        bytes_(bytes),
        error_code_(error_code),
        retries_(retries) {}

  const std::string& path() const noexcept { return path_; }
  std::uint64_t offset() const noexcept { return offset_; }
  std::uint64_t bytes() const noexcept { return bytes_; }
  int error_code() const noexcept { return error_code_; }
  std::uint32_t retries() const noexcept { return retries_; }

 private:
  std::string path_;
  std::uint64_t offset_ = 0;
  std::uint64_t bytes_ = 0;
  int error_code_ = 0;
  std::uint32_t retries_ = 0;
};

/// Transient-vs-fatal errno classification for read paths. Transient errors
/// are worth a bounded retry: the kernel was interrupted or out of a
/// temporary resource, or the device reported a media hiccup (EIO on flash
/// is frequently a one-off ECC event, which is exactly the case the paper's
/// multi-hour SEM runs must survive). Everything else — bad descriptor, bad
/// buffer, bad arguments — is a programming or configuration error where a
/// retry can only burn time.
inline bool is_transient_errno(int err) noexcept {
  switch (err) {
    case EINTR:
    case EAGAIN:
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
    case EBUSY:
    case ETIMEDOUT:
    case ENOMEM:
    case EIO:
      return true;
    default:
      return false;
  }
}

/// Bounded retry with capped exponential backoff and jitter. The defaults
/// recover from the short transient bursts the fault model expects (a few
/// consecutive EIO/EAGAIN on one request) while keeping the worst-case
/// added latency per read under ~1 ms; tests and benches shrink the backoff
/// to microseconds. max_retries == 0 restores the fail-fast seed behaviour
/// (EINTR is always retried for free — it is not an I/O failure).
struct io_retry_policy {
  std::uint32_t max_retries = 4;        ///< re-attempts after the first try
  std::uint32_t backoff_initial_us = 50;
  double backoff_multiplier = 2.0;
  std::uint32_t backoff_max_us = 10000;
  /// Each sleep is scaled by a uniform factor in [1-jitter, 1+jitter] so
  /// oversubscribed threads do not hammer a recovering device in lockstep.
  double jitter = 0.5;

  void validate() const {
    if (backoff_multiplier < 1.0) {
      throw std::invalid_argument(
          "io_retry_policy: backoff_multiplier must be >= 1");
    }
    if (jitter < 0.0 || jitter > 1.0) {
      throw std::invalid_argument("io_retry_policy: jitter must be in [0,1]");
    }
  }

  /// Backoff for the n-th consecutive failure (n >= 1), before jitter.
  double backoff_us(std::uint32_t n) const noexcept {
    double us = backoff_initial_us;
    for (std::uint32_t i = 1; i < n; ++i) {
      us *= backoff_multiplier;
      if (us >= backoff_max_us) return backoff_max_us;
    }
    return us < backoff_max_us ? us : backoff_max_us;
  }
};

}  // namespace asyncgt::sem
