#include "sem/prefetcher.hpp"

namespace asyncgt::sem {

prefetcher::prefetcher(block_cache* cache, ssd_model* device,
                       std::uint64_t block_bytes, std::size_t queue_capacity)
    : cache_(cache),
      device_(device),
      block_bytes_(block_bytes ? block_bytes : default_block_bytes),
      queue_capacity_(queue_capacity ? queue_capacity : 1),
      worker_([this] { worker_loop(); }) {}

prefetcher::~prefetcher() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

void prefetcher::request(std::uint64_t block) noexcept {
  {
    std::lock_guard lk(mu_);
    if (stop_ || queue_.size() >= queue_capacity_ ||
        !queued_.insert(block).second) {
      ++counters_.dropped;
      return;
    }
    queue_.push_back(block);
    ++counters_.requested;
  }
  cv_.notify_one();
}

void prefetcher::drain() {
  std::unique_lock lk(mu_);
  drained_.wait(lk, [this] { return (queue_.empty() && !busy_) || stop_; });
}

prefetcher::counters prefetcher::stats() const {
  std::lock_guard lk(mu_);
  return counters_;
}

void prefetcher::worker_loop() {
  std::unique_lock lk(mu_);
  for (;;) {
    cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    const std::uint64_t block = queue_.front();
    queue_.pop_front();
    queued_.erase(block);
    busy_ = true;
    // The cache probe, the simulated charge, and the install all run
    // unlocked: the charge blocks this thread for the simulated service
    // time, which is exactly the latency being taken off the workers.
    lk.unlock();
    if (cache_->contains(block)) {
      lk.lock();
      ++counters_.stale;
    } else {
      if (device_ != nullptr) device_->read(block_bytes_);
      const bool installed = cache_->install(block);
      lk.lock();
      if (installed) {
        ++counters_.issued;
      } else {
        ++counters_.stale;  // raced with a demand miss, or policy refusal
      }
    }
    busy_ = false;
    if (queue_.empty()) drained_.notify_all();
  }
}

}  // namespace asyncgt::sem
