// Presets calibrated to the three flash configurations of the paper
// (§IV-C / Figure 1):
//
//   FusionIO — 4x 80GB SLC PCI-E cards, RAID 0: "close to 200,000 random
//              reads per second"
//   Intel    — 4x 80GB X25-M MLC SATA, RAID 0: "close to 60,000"
//   Corsair  — 4x 128GB P128 MLC SATA, RAID 0: "close to 30,000"
//
// plateau IOPS = channels / read_latency, so the presets pick (latency,
// channels) pairs that hit the paper's plateaus with single-thread IOPS in
// the realistic few-thousands range for each device class. A time_scale
// below 1 compresses the simulation uniformly (see ssd_model.hpp).
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "sem/ssd_model.hpp"

namespace asyncgt::sem {

inline ssd_params fusionio_params(double time_scale = 1.0) {
  ssd_params p;
  p.name = "fusionio";
  p.read_latency_us = 80.0;    // PCI-E SLC: low-latency reads
  p.write_latency_us = 200.0;
  p.seq_block_us = 1.0;
  p.channels = 16;             // plateau = 16 / 80us = 200k IOPS
  p.time_scale = time_scale;
  return p;
}

inline ssd_params intel_params(double time_scale = 1.0) {
  ssd_params p;
  p.name = "intel";
  p.read_latency_us = 200.0;   // SATA MLC
  p.write_latency_us = 600.0;
  p.seq_block_us = 2.0;
  p.channels = 12;             // plateau = 12 / 200us = 60k IOPS
  p.time_scale = time_scale;
  return p;
}

inline ssd_params corsair_params(double time_scale = 1.0) {
  ssd_params p;
  p.name = "corsair";
  p.read_latency_us = 266.0;   // slowest SATA MLC tested
  p.write_latency_us = 800.0;
  p.seq_block_us = 2.5;
  p.channels = 8;              // plateau = 8 / 266us ~= 30k IOPS
  p.time_scale = time_scale;
  return p;
}

inline std::vector<ssd_params> all_device_presets(double time_scale = 1.0) {
  return {fusionio_params(time_scale), intel_params(time_scale),
          corsair_params(time_scale)};
}

inline ssd_params device_preset_by_name(const std::string& name,
                                        double time_scale = 1.0) {
  if (name == "fusionio") return fusionio_params(time_scale);
  if (name == "intel") return intel_params(time_scale);
  if (name == "corsair") return corsair_params(time_scale);
  throw std::invalid_argument("unknown device preset '" + name +
                              "' (expected fusionio|intel|corsair)");
}

}  // namespace asyncgt::sem
