// Asynchronous hot-block readahead lane.
//
// When the pressure tracker says a block has crossed the hotness threshold
// while NOT cache-resident, every queued visitor for it is heading for the
// same miss. The prefetcher moves that miss off the worker threads: a
// single background thread pops requested blocks, charges the simulated
// device for one block read (so accounting stays honest — prefetched bytes
// are real bytes, and a wasted prefetch shows up as extra device traffic),
// and installs the block into the cache via block_cache::install(), which
// keeps it outside the hit/miss ledger until a demand access redeems it.
//
// The request side is nonblocking and deduplicating: a bounded queue plus a
// resident-set filter, so the enqueue hot path costs one short mutex hold
// and a full queue simply drops the hint (counted). Prefetching is a
// heuristic accelerator — dropping a request is always correct, the demand
// path will just pay its own miss.
//
// Scope: the lane is deliberately independent of the io_backend plumbing —
// it never touches the edge_file, so fault-injector plan sequences and the
// backends' host-read batching are unaffected. sem_config gates it to the
// coalescing/uring backends (the sync backend has no async lane to overlap
// with; see docs/io_backends.md).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "sem/block_cache.hpp"
#include "sem/block_index.hpp"
#include "sem/ssd_model.hpp"

namespace asyncgt::sem {

class prefetcher {
 public:
  struct counters {
    std::uint64_t requested = 0;  // request() calls that were accepted
    std::uint64_t issued = 0;     // blocks actually charged and installed
    std::uint64_t dropped = 0;    // queue-full / duplicate hints discarded
    std::uint64_t stale = 0;      // popped blocks already resident (raced
                                  // with a demand miss that cached them)
  };

  /// `cache` is required; `device` may be null (install without simulated
  /// charge — degenerate but harmless, used by unit tests). `block_bytes`
  /// is the charge granularity (pass the device's; 0 means the default
  /// 4 KiB page). The worker thread starts immediately.
  prefetcher(block_cache* cache, ssd_model* device,
             std::uint64_t block_bytes = default_block_bytes,
             std::size_t queue_capacity = 64);

  /// Stops the worker and joins it; queued hints are discarded.
  ~prefetcher();

  prefetcher(const prefetcher&) = delete;
  prefetcher& operator=(const prefetcher&) = delete;

  /// Hints that `block` is worth reading ahead. Nonblocking: duplicates of
  /// a still-queued hint and hints beyond the queue bound are dropped.
  void request(std::uint64_t block) noexcept;

  /// Blocks until every currently queued hint has been processed (tests).
  void drain();

  counters stats() const;

 private:
  void worker_loop();

  block_cache* cache_;
  ssd_model* device_;
  const std::uint64_t block_bytes_;
  const std::size_t queue_capacity_;

  mutable std::mutex mu_;
  std::condition_variable cv_;        // worker wakeups
  std::condition_variable drained_;   // drain() wakeups
  std::deque<std::uint64_t> queue_;
  std::unordered_set<std::uint64_t> queued_;  // dedup filter
  counters counters_;
  bool stop_ = false;
  bool busy_ = false;  // worker is processing a popped block
  std::thread worker_;
};

}  // namespace asyncgt::sem
