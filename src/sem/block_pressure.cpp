#include "sem/block_pressure.hpp"

namespace asyncgt::sem {

std::uint64_t block_pressure::total_increments() const noexcept {
  std::uint64_t sum = 0;
  for (const shard& s : shards_) {
    sum += s.increments.load(std::memory_order_relaxed);
  }
  return sum;
}

std::uint64_t block_pressure::total_decrements() const noexcept {
  std::uint64_t sum = 0;
  for (const shard& s : shards_) {
    sum += s.decrements.load(std::memory_order_relaxed);
  }
  return sum;
}

std::uint64_t block_pressure::total_pending() const noexcept {
  const std::uint64_t inc = total_increments();
  const std::uint64_t dec = total_decrements();
  return inc > dec ? inc - dec : 0;
}

void block_pressure::reset() noexcept {
  for (auto& p : pending_) p.store(0, std::memory_order_relaxed);
  for (shard& s : shards_) {
    s.increments.store(0, std::memory_order_relaxed);
    s.decrements.store(0, std::memory_order_relaxed);
  }
  out_of_range_.store(0, std::memory_order_relaxed);
}

}  // namespace asyncgt::sem
