// sem_config — the one-declaration construction surface for semi-external
// graphs.
//
// Before this builder, every SEM call site wired sem_csr by hand through
// five independent setters (backend, cache, heat, fault injector, retries),
// and the hot-block machinery would have made it eight (pressure, advisor,
// prefetch). sem_config folds the whole arrangement into one struct with
// fluent with_* setters; open<VertexId>() materializes a sem_bundle that
// OWNS every piece in destruction-safe order, so a call site is:
//
//   auto scfg = sem::sem_config(path)
//                   .with_device(&dev)
//                   .with_cache_fraction(0.25)
//                   .with_cache_policy("pressure")
//                   .with_hot_ordering(true)
//                   .with_prefetch_hot(true);
//   auto bundle = scfg.open<vertex32>();
//   bundle.wire_queue(topt.queue);   // order=hot + advisor, when requested
//   run(*bundle.graph, topt);
//
// from_options() bridges from traversal_options (duck-typed, so this header
// never includes the service layer): the --ordering=hot / --cache-policy= /
// --cache-fraction= / --prefetch-hot / --hot-threshold= flags parsed by
// traversal_options::from_flags land here without further plumbing.
//
// The old sem_csr setters remain as the thin primitives this builder
// composes from (see the deprecation note in sem_csr.hpp).
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>

#include "queue/queue_config.hpp"
#include "sem/block_cache.hpp"
#include "sem/block_heat.hpp"
#include "sem/block_index.hpp"
#include "sem/block_pressure.hpp"
#include "sem/cache_policy.hpp"
#include "sem/fault_injector.hpp"
#include "sem/hot_advisor.hpp"
#include "sem/io_backend.hpp"
#include "sem/prefetcher.hpp"
#include "sem/sem_csr.hpp"
#include "sem/ssd_model.hpp"

namespace asyncgt::sem {

/// Everything sem_config::open() built, ownership included. Member order is
/// destruction order in reverse: the advisor and prefetcher go first (the
/// prefetcher joins its worker thread while the cache and device it touches
/// are still alive), the graph before the pressure/heat/caches it borrows.
template <typename VertexId>
struct sem_bundle {
  std::unique_ptr<block_cache> cache;          // destroyed last
  std::unique_ptr<block_cache> reverse_cache;
  std::unique_ptr<block_heat> heat;
  std::unique_ptr<block_heat> reverse_heat;
  std::unique_ptr<block_pressure> pressure;
  std::unique_ptr<sem_csr<VertexId>> graph;
  std::unique_ptr<prefetcher> prefetch;
  std::unique_ptr<sem_hot_advisor<VertexId>> advisor;  // destroyed first

  /// Applies the hot-ordering half to a queue config: when the bundle was
  /// built with hot ordering, selects queue_order::hot and installs the
  /// advisor; otherwise leaves the config untouched.
  void wire_queue(visitor_queue_config& q) const {
    if (advisor == nullptr) return;
    q.order = queue_order::hot;
    q.advisor = advisor.get();
  }
};

class sem_config {
 public:
  sem_config() = default;
  explicit sem_config(std::string path) : path_(std::move(path)) {}

  // ---- Fluent setters (each returns *this) ----

  sem_config& with_path(std::string path) {
    path_ = std::move(path);
    return *this;
  }
  /// Simulated device (borrowed, nullable = raw host speed).
  sem_config& with_device(ssd_model* device) {
    device_ = device;
    return *this;
  }
  /// Page-cache size as a fraction of the graph file's blocks (0 = no
  /// cache). Overridden by an explicit with_cache_blocks.
  sem_config& with_cache_fraction(double fraction) {
    cache_fraction_ = fraction;
    return *this;
  }
  /// Explicit page-cache capacity in blocks (0 = derive from the fraction).
  sem_config& with_cache_blocks(std::uint64_t blocks) {
    cache_blocks_ = blocks;
    return *this;
  }
  /// Admission/eviction policy name: "lru" (default) or "pressure"
  /// (make_cache_policy; "pressure" implies building a pressure tracker).
  sem_config& with_cache_policy(std::string name) {
    cache_policy_ = std::move(name);
    return *this;
  }
  /// I/O backend name ("sync" | "coalescing" | "uring") and batch depth.
  sem_config& with_io_backend(std::string name, std::uint32_t batch = 8) {
    io_backend_ = std::move(name);
    io_batch_ = batch;
    return *this;
  }
  /// Transient-I/O retry budget (io_retry_policy correspondence).
  sem_config& with_retries(std::uint32_t max_retries,
                           std::uint32_t backoff_initial_us) {
    io_retries_ = max_retries;
    io_backoff_us_ = backoff_initial_us;
    return *this;
  }
  /// Attach a block_heat recorder sized to the file.
  sem_config& with_heat(bool on = true) {
    heat_ = on;
    return *this;
  }
  /// Build the pressure tracker + hot advisor (queue_order::hot signal).
  sem_config& with_hot_ordering(bool on = true,
                                std::uint32_t threshold = 4) {
    hot_ = on;
    hot_threshold_ = threshold;
    return *this;
  }
  /// Async readahead of hot non-resident blocks. Requires a batching
  /// backend (coalescing/uring) — the sync backend has no async lane to
  /// overlap with, so the request is ignored there (docs/io_backends.md).
  sem_config& with_prefetch_hot(bool on = true) {
    prefetch_hot_ = on;
    return *this;
  }
  /// Open the on-disk reverse (transpose) view, with its own cache/heat
  /// sized like the forward ones.
  sem_config& with_reverse(bool on = true) {
    open_reverse_ = on;
    return *this;
  }
  /// Borrowed fault injector (nullable).
  sem_config& with_fault_injector(fault_injector* injector) {
    injector_ = injector;
    return *this;
  }
  /// Borrowed telemetry I/O recorder (nullable).
  sem_config& with_io_recorder(telemetry::io_recorder* recorder) {
    recorder_ = recorder;
    return *this;
  }

  // ---- Accessors (benches echo these into their reports) ----

  const std::string& path() const noexcept { return path_; }
  ssd_model* device() const noexcept { return device_; }
  double cache_fraction() const noexcept { return cache_fraction_; }
  const std::string& cache_policy() const noexcept { return cache_policy_; }
  const std::string& io_backend_name() const noexcept { return io_backend_; }
  std::uint32_t io_batch() const noexcept { return io_batch_; }
  bool hot_ordering() const noexcept { return hot_; }
  std::uint32_t hot_threshold() const noexcept { return hot_threshold_; }
  bool prefetch_hot() const noexcept { return prefetch_hot_; }

  /// Bridge from traversal_options (or anything shaped like it — duck
  /// typed so sem never includes the service layer). Picks up the retry /
  /// backend knobs plus the hot-block flags: queue.order == hot selects the
  /// advisor, cache_policy/cache_fraction/prefetch_hot/hot_threshold map
  /// 1:1, and hybrid requests the reverse view. A negative cache_fraction
  /// means "caller decides" and leaves the builder's current value alone.
  template <typename Topt>
  static sem_config from_options(const Topt& t, std::string path) {
    sem_config c(std::move(path));
    c.with_io_backend(t.io_backend, t.io_batch)
        .with_retries(t.io_retries, t.io_backoff_us)
        .with_hot_ordering(t.queue.order == queue_order::hot,
                           t.hot_threshold)
        .with_cache_policy(t.cache_policy)
        .with_prefetch_hot(t.prefetch_hot)
        .with_reverse(t.hybrid);
    if (t.cache_fraction >= 0.0) c.with_cache_fraction(t.cache_fraction);
    return c;
  }

  /// Materializes the whole arrangement. Throws on an unknown backend or
  /// policy name, a missing/corrupt graph file, or a missing reverse file
  /// when with_reverse was requested.
  template <typename VertexId>
  sem_bundle<VertexId> open() const {
    sem_bundle<VertexId> b;
    const std::uint64_t bs = device_ != nullptr
                                 ? device_->params().block_bytes
                                 : default_block_bytes;
    const std::uint64_t file_bytes = std::filesystem::file_size(path_);
    // Seed-compatible sizing (file/bs + 1, not a strict ceil): agt_tool and
    // the tables have always sized caches this way, and the bench shape
    // checks are calibrated against it.
    const std::uint64_t file_blocks = file_bytes / bs + 1;
    // Pressure covers the whole file's block range; built whenever the hot
    // signal OR the pressure-weighted policy needs it.
    if (hot_ || cache_policy_ == "pressure") {
      b.pressure = std::make_unique<block_pressure>(
          blocks_covering(file_bytes, bs), bs);
    }
    const std::uint64_t cap = cache_capacity(file_blocks);
    if (cap > 0) {
      b.cache = std::make_unique<block_cache>(
          cap, make_cache_policy(cache_policy_, b.pressure.get()));
    }
    b.graph = std::make_unique<sem_csr<VertexId>>(path_, device_,
                                                  b.cache.get());
    io_backend_config bcfg;
    bcfg.kind = parse_io_backend_kind(io_backend_);
    bcfg.batch = io_batch_;
    bcfg.block_bytes = static_cast<std::uint32_t>(bs);
    b.graph->set_io_backend(bcfg);
    io_retry_policy retry;
    retry.max_retries = io_retries_;
    retry.backoff_initial_us = io_backoff_us_;
    b.graph->set_retry_policy(retry);
    if (heat_) {
      b.heat = std::make_unique<block_heat>(b.graph->heat_blocks_for(bs), bs);
      b.graph->set_block_heat(b.heat.get());
    }
    if (open_reverse_) {
      const std::string rpath = reverse_path_for(path_);
      const std::uint64_t rblocks =
          std::filesystem::file_size(rpath) / bs + 1;
      const std::uint64_t rcap = cache_capacity(rblocks);
      if (rcap > 0) {
        // The reverse file is its own byte space; its cache stays plain LRU
        // (pressure describes forward-adjacency demand only).
        b.reverse_cache = std::make_unique<block_cache>(rcap);
      }
      if (heat_) {
        b.reverse_heat = std::make_unique<block_heat>(
            blocks_covering(std::filesystem::file_size(rpath), bs), bs);
      }
      b.graph->open_reverse(b.reverse_cache.get(), b.reverse_heat.get());
    }
    b.graph->set_io_recorder(recorder_);
    b.graph->set_fault_injector(injector_);
    // The async readahead lane only helps when the demand path itself
    // batches (coalescing/uring); on the sync backend it is ignored.
    if (prefetch_hot_ && b.cache != nullptr &&
        bcfg.kind != io_backend_kind::sync) {
      b.prefetch = std::make_unique<prefetcher>(b.cache.get(), device_, bs);
    }
    if (hot_) {
      b.advisor = std::make_unique<sem_hot_advisor<VertexId>>(
          *b.graph, b.pressure.get(), b.cache.get(), b.prefetch.get(),
          hot_threshold_);
    }
    return b;
  }

 private:
  std::uint64_t cache_capacity(std::uint64_t file_blocks) const {
    if (cache_blocks_ > 0) return cache_blocks_;
    if (cache_fraction_ <= 0.0) return 0;
    const auto cap = static_cast<std::uint64_t>(
        cache_fraction_ * static_cast<double>(file_blocks));
    return cap > 0 ? cap : 1;
  }

  std::string path_;
  ssd_model* device_ = nullptr;
  double cache_fraction_ = 0.0;
  std::uint64_t cache_blocks_ = 0;
  std::string cache_policy_ = "lru";
  std::string io_backend_ = "sync";
  std::uint32_t io_batch_ = 8;
  std::uint32_t io_retries_ = 4;
  std::uint32_t io_backoff_us_ = 50;
  bool heat_ = false;
  bool hot_ = false;
  std::uint32_t hot_threshold_ = 4;
  bool prefetch_hot_ = false;
  bool open_reverse_ = false;
  fault_injector* injector_ = nullptr;
  telemetry::io_recorder* recorder_ = nullptr;
};

}  // namespace asyncgt::sem
