// SEM implementation of the queue's hot-vertex advisory interface.
//
// Maps each visitor's vertex to the device block holding its adjacency list
// (sem_csr::adjacency_block_of — one offset lookup and a divide) and keys
// the three hot-block consumers off that:
//
//   on_enqueue  -> block_pressure::add, and when the block's pending count
//                  crosses the hotness threshold while non-resident, a
//                  readahead hint to the prefetcher (re-hinted every
//                  threshold-th enqueue after, so a block evicted while
//                  still hot gets another chance).
//   on_complete -> block_pressure::remove.
//   is_hot      -> cache residency; pending >= threshold only when no
//                  cache is attached (see the method comment for why
//                  pending must NOT promote non-resident blocks).
//   reset       -> block_pressure::reset (the engine discarded the queued
//                  visitors the pending counts described).
//
// One advisor serves one sem graph + cache + pressure triple. When several
// jobs traverse the same graph concurrently, they share the pressure
// tracker — the counts then describe the union of their frontiers, which is
// exactly the signal a shared cache wants, but per-job conservation no
// longer holds (document-level caveat; the conservation tests run one job).
#pragma once

#include <cstdint>

#include "queue/hot_advisor.hpp"
#include "sem/block_cache.hpp"
#include "sem/block_pressure.hpp"
#include "sem/prefetcher.hpp"
#include "sem/sem_csr.hpp"

namespace asyncgt::sem {

template <typename VertexId>
class sem_hot_advisor final : public hot_advisor {
 public:
  /// `graph` and `pressure` are required; `cache` and `prefetch` are
  /// nullable (no residency signal / no readahead). `hot_threshold` is the
  /// pending count at which a block counts as hot (>= 1).
  sem_hot_advisor(const sem_csr<VertexId>& graph, block_pressure* pressure,
                  block_cache* cache = nullptr, prefetcher* prefetch = nullptr,
                  std::uint32_t hot_threshold = 4) noexcept
      : graph_(&graph),
        pressure_(pressure),
        cache_(cache),
        prefetch_(prefetch),
        threshold_(hot_threshold == 0 ? 1 : hot_threshold) {}

  std::uint32_t hot_threshold() const noexcept { return threshold_; }

  bool is_hot(std::uint64_t vertex) const noexcept override {
    if (vertex >= graph_->num_vertices()) return false;
    const std::uint64_t b =
        graph_->adjacency_block_of(static_cast<VertexId>(vertex));
    // Residency is the band signal: a resident-block visitor costs zero
    // device I/O right now. Pending counts deliberately do NOT promote a
    // non-resident block — the whole win of hot ordering is DEFERRING
    // cold-block visitors while their backlog accumulates, and a pending
    // clause here promotes exactly the visitors that should wait (measured:
    // it drags bytes/visit back to the static-semi-sort baseline, see
    // docs/hot_blocks.md). The backlog reaches the I/O layer through the
    // pressure-weighted eviction policy and the prefetch lane instead.
    // Without a cache there is no residency signal, so the pending
    // threshold is the only usable band classifier.
    if (cache_ != nullptr) return cache_->contains(b);
    return pressure_->pending(b) >= threshold_;
  }

  void on_enqueue(std::uint64_t vertex) noexcept override {
    if (vertex >= graph_->num_vertices()) return;
    const std::uint64_t b =
        graph_->adjacency_block_of(static_cast<VertexId>(vertex));
    const std::uint32_t pending = pressure_->add(b);
    // Hint readahead at every threshold-th enqueue (crossing included):
    // amortizes the residency probe to 1/threshold enqueues, and re-hints a
    // block that was evicted while its backlog kept growing. The prefetcher
    // dedups and drops on overload, so over-hinting is cheap.
    if (prefetch_ != nullptr && pending >= threshold_ &&
        pending % threshold_ == 0 &&
        (cache_ == nullptr || !cache_->contains(b))) {
      prefetch_->request(b);
    }
  }

  void on_complete(std::uint64_t vertex) noexcept override {
    if (vertex >= graph_->num_vertices()) return;
    pressure_->remove(
        graph_->adjacency_block_of(static_cast<VertexId>(vertex)));
  }

  void reset() noexcept override { pressure_->reset(); }

 private:
  const sem_csr<VertexId>* graph_;
  block_pressure* pressure_;
  block_cache* cache_;
  prefetcher* prefetch_;
  std::uint32_t threshold_;
};

}  // namespace asyncgt::sem
