#include "sem/edge_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "sem/fault_injector.hpp"
#include "telemetry/metric_scope.hpp"
#include "util/cancellation.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace asyncgt::sem {

namespace {

/// Jittered backoff sleep for the n-th consecutive transient failure.
/// Jitter draws from a per-thread stream so oversubscribed readers spread
/// out instead of re-hitting a recovering device in lockstep; determinism
/// is not needed here (the backoff duration never changes what is read).
void backoff_sleep(const io_retry_policy& policy, std::uint32_t n) {
  thread_local xoshiro256ss rng(
      splitmix64(std::hash<std::thread::id>{}(std::this_thread::get_id()))
          .next());
  double us = policy.backoff_us(n);
  if (policy.jitter > 0.0) {
    us *= 1.0 + policy.jitter * (2.0 * rng.next_double() - 1.0);
  }
  if (us >= 1.0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<std::int64_t>(us)));
  }
}

std::string errno_text(int err) {
  return err == 0 ? std::string("unexpected EOF") : std::strerror(err);
}

/// An injected stall: the read blocks as if the device hung, parked in a
/// polling loop that is also a *cancellation point* — the only way a thread
/// stuck here can unwind is the injector's release_stalls() latch (device
/// recovered: the read then proceeds normally) or the ambient job's abort
/// hint (watchdog deadline/stall fire, user cancel), which throws
/// operation_cancelled so the engine classifies the unwind as cooperative.
void stall_until_released(const fault_injector& injector,
                          const std::string& path, std::uint64_t offset) {
  while (!injector.stalls_released()) {
    if (telemetry::metric_scope::current_abort_requested()) {
      throw operation_cancelled("edge_file: stalled pread '" + path +
                                "' at offset " + std::to_string(offset) +
                                " cancelled");
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

}  // namespace

edge_file::edge_file(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) {
    throw std::runtime_error("edge_file: cannot open '" + path +
                             "': " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("edge_file: fstat '" + path +
                             "': " + std::strerror(err));
  }
  size_ = static_cast<std::uint64_t>(st.st_size);
}

edge_file::~edge_file() { close(); }

edge_file::edge_file(edge_file&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      size_(std::exchange(other.size_, 0)),
      path_(std::move(other.path_)),
      recorder_(std::exchange(other.recorder_, nullptr)),
      injector_(std::exchange(other.injector_, nullptr)),
      retry_(other.retry_) {}

edge_file& edge_file::operator=(edge_file&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    size_ = std::exchange(other.size_, 0);
    path_ = std::move(other.path_);
    recorder_ = std::exchange(other.recorder_, nullptr);
    injector_ = std::exchange(other.injector_, nullptr);
    retry_ = other.retry_;
  }
  return *this;
}

void edge_file::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void edge_file::read_at(std::uint64_t offset, void* dst,
                        std::uint64_t bytes) const {
  // Fail fast with context instead of letting an out-of-range request limp
  // into a mid-loop "unexpected EOF": a bad offset is a caller bug (or a
  // corrupted index), and no amount of retrying changes the file size.
  if (bytes > size_ || offset > size_ - bytes) {
    throw io_error("edge_file: read out of range in '" + path_ + "': [" +
                       std::to_string(offset) + ", " +
                       std::to_string(offset + bytes) + ") exceeds size " +
                       std::to_string(size_),
                   path_, offset, bytes, 0, 0);
  }
  if (recorder_ != nullptr) {
    wall_timer t;
    read_at_raw(offset, dst, bytes);
    recorder_->record(bytes, t.elapsed_us());
    return;
  }
  read_at_raw(offset, dst, bytes);
}

void edge_file::read_at_raw(std::uint64_t offset, void* dst,
                            std::uint64_t bytes) const {
  fault_plan plan;
  if (injector_ != nullptr) {
    plan = injector_->plan(offset, bytes);
    if (plan.delay_us != 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(plan.delay_us));
    }
    if (plan.stall) stall_until_released(*injector_, path_, offset);
  }

  auto* out = static_cast<char*>(dst);
  std::uint64_t done = 0;
  std::uint32_t failures = 0;  // transient failures burned on this request
  bool short_pending = plan.short_len != 0;

  // The message spells out both the failing position and the original
  // request [offset, +bytes): batch-split retries re-issue sub-ranges of a
  // merged batch, and debugging them needs the request geometry, not just
  // "N bytes failed" (see docs/io_backends.md).
  const auto give_up = [&](int err) -> io_error {
    if (recorder_ != nullptr) recorder_->record_gave_up();
    return io_error("edge_file: pread '" + path_ + "' at offset " +
                        std::to_string(offset + done) + " (request [" +
                        std::to_string(offset) + ", +" +
                        std::to_string(bytes) + ")) failed after " +
                        std::to_string(failures) + " retries: " +
                        errno_text(err),
                    path_, offset, bytes, err, failures);
  };

  while (done < bytes) {
    int err = 0;
    ssize_t got;
    if (failures < plan.fail_attempts) {
      // Injected failure: the descriptor is never touched, exactly as if
      // the kernel had returned the planned errno.
      got = -1;
      err = plan.err;
    } else {
      std::uint64_t want = bytes - done;
      if (short_pending) {
        want = std::min<std::uint64_t>(want, plan.short_len);
      }
      got = ::pread(fd_, out + done, want,
                    static_cast<off_t>(offset + done));
      err = got < 0 ? errno : 0;
      if (err == EINTR) continue;  // free re-issue; not an I/O failure
      if (got > 0) short_pending = false;
    }
    if (got < 0) {
      const bool injected = failures < plan.fail_attempts;
      const bool transient =
          is_transient_errno(err) && !(injected && plan.fatal);
      if (!transient || failures >= retry_.max_retries) throw give_up(err);
      ++failures;
      if (recorder_ != nullptr) recorder_->record_retry();
      backoff_sleep(retry_, failures);
      continue;
    }
    if (got == 0) {
      // Bounds were checked, so EOF here means the file shrank under us —
      // a permanent storage-level failure, not a retry candidate.
      throw give_up(0);
    }
    done += static_cast<std::uint64_t>(got);
  }
}

bool edge_file::readv_at(std::uint64_t offset, const io_slice* slices,
                         std::size_t n) const {
  if (n == 0) return false;
  if (n == 1) {
    read_at(offset, slices[0].dst, slices[0].bytes);
    return false;
  }
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += slices[i].bytes;
  if (total > size_ || offset > size_ - total) {
    throw io_error("edge_file: batched read out of range in '" + path_ +
                       "': [" + std::to_string(offset) + ", " +
                       std::to_string(offset + total) + ") exceeds size " +
                       std::to_string(size_),
                   path_, offset, total, 0, 0);
  }
  try {
    if (recorder_ != nullptr) {
      wall_timer t;
      readv_at_raw(offset, slices, n, total);
      recorder_->record(total, t.elapsed_us());
      return false;
    }
    readv_at_raw(offset, slices, n, total);
    return false;
  } catch (const io_error&) {
    // Retries split the batch: the merged range failed permanently, so
    // re-issue every slice on its own — all of them, so a bad slice doesn't
    // poison the healthy ones staged after it. Only a slice whose own byte
    // range is actually bad can still fail, and the first such failure
    // (with that range's offset and length) is rethrown once the rest are
    // done.
    std::exception_ptr first_bad;
    std::uint64_t pos = offset;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        read_at(pos, slices[i].dst, slices[i].bytes);
      } catch (const io_error&) {
        if (!first_bad) first_bad = std::current_exception();
      }
      pos += slices[i].bytes;
    }
    if (first_bad) std::rethrow_exception(first_bad);
    return true;
  }
}

void edge_file::readv_at_raw(std::uint64_t offset, const io_slice* slices,
                             std::size_t n, std::uint64_t total) const {
  fault_plan plan;
  if (injector_ != nullptr) {
    // One plan for the whole merged range: a batch is one device operation
    // as far as the failure model is concerned.
    plan = injector_->plan(offset, total);
    if (plan.delay_us != 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(plan.delay_us));
    }
    if (plan.stall) stall_until_released(*injector_, path_, offset);
  }

  std::uint64_t done = 0;
  std::uint32_t failures = 0;
  bool short_pending = plan.short_len != 0;
  std::vector<struct iovec> iov;
  iov.reserve(n);

  const auto give_up = [&](int err) -> io_error {
    // No record_gave_up here: readv_at's split fallback retries the slices
    // individually, and only a slice that then fails for good records it.
    return io_error("edge_file: preadv '" + path_ + "' at offset " +
                        std::to_string(offset + done) + " (batch [" +
                        std::to_string(offset) + ", +" +
                        std::to_string(total) + "), " + std::to_string(n) +
                        " slices) failed after " + std::to_string(failures) +
                        " retries: " + errno_text(err),
                    path_, offset, total, err, failures);
  };

  while (done < total) {
    int err = 0;
    ssize_t got;
    if (failures < plan.fail_attempts) {
      got = -1;
      err = plan.err;
    } else {
      std::uint64_t want = total - done;
      if (short_pending) {
        want = std::min<std::uint64_t>(want, plan.short_len);
      }
      // Rebuild the iovec tail from the resume point: skip the slices the
      // previous (possibly short) attempts already filled.
      iov.clear();
      std::uint64_t skip = done;
      std::uint64_t budget = want;
      for (std::size_t i = 0; i < n && budget > 0; ++i) {
        if (skip >= slices[i].bytes) {
          skip -= slices[i].bytes;
          continue;
        }
        const std::uint64_t avail = slices[i].bytes - skip;
        const std::uint64_t take = std::min(avail, budget);
        iov.push_back({static_cast<char*>(slices[i].dst) + skip,
                       static_cast<std::size_t>(take)});
        budget -= take;
        skip = 0;
      }
      got = ::preadv(fd_, iov.data(), static_cast<int>(iov.size()),
                     static_cast<off_t>(offset + done));
      err = got < 0 ? errno : 0;
      if (err == EINTR) continue;
      if (got > 0) short_pending = false;
    }
    if (got < 0) {
      const bool injected = failures < plan.fail_attempts;
      const bool transient =
          is_transient_errno(err) && !(injected && plan.fatal);
      if (!transient || failures >= retry_.max_retries) throw give_up(err);
      ++failures;
      if (recorder_ != nullptr) recorder_->record_retry();
      backoff_sleep(retry_, failures);
      continue;
    }
    if (got == 0) throw give_up(0);
    done += static_cast<std::uint64_t>(got);
  }
}

}  // namespace asyncgt::sem
