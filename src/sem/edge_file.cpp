#include "sem/edge_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "sem/fault_injector.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace asyncgt::sem {

namespace {

/// Jittered backoff sleep for the n-th consecutive transient failure.
/// Jitter draws from a per-thread stream so oversubscribed readers spread
/// out instead of re-hitting a recovering device in lockstep; determinism
/// is not needed here (the backoff duration never changes what is read).
void backoff_sleep(const io_retry_policy& policy, std::uint32_t n) {
  thread_local xoshiro256ss rng(
      splitmix64(std::hash<std::thread::id>{}(std::this_thread::get_id()))
          .next());
  double us = policy.backoff_us(n);
  if (policy.jitter > 0.0) {
    us *= 1.0 + policy.jitter * (2.0 * rng.next_double() - 1.0);
  }
  if (us >= 1.0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<std::int64_t>(us)));
  }
}

std::string errno_text(int err) {
  return err == 0 ? std::string("unexpected EOF") : std::strerror(err);
}

}  // namespace

edge_file::edge_file(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) {
    throw std::runtime_error("edge_file: cannot open '" + path +
                             "': " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("edge_file: fstat '" + path +
                             "': " + std::strerror(err));
  }
  size_ = static_cast<std::uint64_t>(st.st_size);
}

edge_file::~edge_file() { close(); }

edge_file::edge_file(edge_file&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      size_(std::exchange(other.size_, 0)),
      path_(std::move(other.path_)),
      recorder_(std::exchange(other.recorder_, nullptr)),
      injector_(std::exchange(other.injector_, nullptr)),
      retry_(other.retry_) {}

edge_file& edge_file::operator=(edge_file&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    size_ = std::exchange(other.size_, 0);
    path_ = std::move(other.path_);
    recorder_ = std::exchange(other.recorder_, nullptr);
    injector_ = std::exchange(other.injector_, nullptr);
    retry_ = other.retry_;
  }
  return *this;
}

void edge_file::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void edge_file::read_at(std::uint64_t offset, void* dst,
                        std::uint64_t bytes) const {
  // Fail fast with context instead of letting an out-of-range request limp
  // into a mid-loop "unexpected EOF": a bad offset is a caller bug (or a
  // corrupted index), and no amount of retrying changes the file size.
  if (bytes > size_ || offset > size_ - bytes) {
    throw io_error("edge_file: read out of range in '" + path_ + "': [" +
                       std::to_string(offset) + ", " +
                       std::to_string(offset + bytes) + ") exceeds size " +
                       std::to_string(size_),
                   path_, offset, bytes, 0, 0);
  }
  if (recorder_ != nullptr) {
    wall_timer t;
    read_at_raw(offset, dst, bytes);
    recorder_->record(bytes, t.elapsed_us());
    return;
  }
  read_at_raw(offset, dst, bytes);
}

void edge_file::read_at_raw(std::uint64_t offset, void* dst,
                            std::uint64_t bytes) const {
  fault_plan plan;
  if (injector_ != nullptr) {
    plan = injector_->plan(offset, bytes);
    if (plan.delay_us != 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(plan.delay_us));
    }
  }

  auto* out = static_cast<char*>(dst);
  std::uint64_t done = 0;
  std::uint32_t failures = 0;  // transient failures burned on this request
  bool short_pending = plan.short_len != 0;

  const auto give_up = [&](int err) -> io_error {
    if (recorder_ != nullptr) recorder_->record_gave_up();
    return io_error("edge_file: pread '" + path_ + "' at offset " +
                        std::to_string(offset + done) + " failed after " +
                        std::to_string(failures) + " retries: " +
                        errno_text(err),
                    path_, offset, bytes, err, failures);
  };

  while (done < bytes) {
    int err = 0;
    ssize_t got;
    if (failures < plan.fail_attempts) {
      // Injected failure: the descriptor is never touched, exactly as if
      // the kernel had returned the planned errno.
      got = -1;
      err = plan.err;
    } else {
      std::uint64_t want = bytes - done;
      if (short_pending) {
        want = std::min<std::uint64_t>(want, plan.short_len);
      }
      got = ::pread(fd_, out + done, want,
                    static_cast<off_t>(offset + done));
      err = got < 0 ? errno : 0;
      if (err == EINTR) continue;  // free re-issue; not an I/O failure
      if (got > 0) short_pending = false;
    }
    if (got < 0) {
      const bool injected = failures < plan.fail_attempts;
      const bool transient =
          is_transient_errno(err) && !(injected && plan.fatal);
      if (!transient || failures >= retry_.max_retries) throw give_up(err);
      ++failures;
      if (recorder_ != nullptr) recorder_->record_retry();
      backoff_sleep(retry_, failures);
      continue;
    }
    if (got == 0) {
      // Bounds were checked, so EOF here means the file shrank under us —
      // a permanent storage-level failure, not a retry candidate.
      throw give_up(0);
    }
    done += static_cast<std::uint64_t>(got);
  }
}

}  // namespace asyncgt::sem
