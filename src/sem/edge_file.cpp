#include "sem/edge_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/timer.hpp"

namespace asyncgt::sem {

edge_file::edge_file(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) {
    throw std::runtime_error("edge_file: cannot open '" + path +
                             "': " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("edge_file: fstat '" + path +
                             "': " + std::strerror(err));
  }
  size_ = static_cast<std::uint64_t>(st.st_size);
}

edge_file::~edge_file() { close(); }

edge_file::edge_file(edge_file&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      size_(std::exchange(other.size_, 0)),
      path_(std::move(other.path_)),
      recorder_(std::exchange(other.recorder_, nullptr)) {}

edge_file& edge_file::operator=(edge_file&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    size_ = std::exchange(other.size_, 0);
    path_ = std::move(other.path_);
    recorder_ = std::exchange(other.recorder_, nullptr);
  }
  return *this;
}

void edge_file::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void edge_file::read_at(std::uint64_t offset, void* dst,
                        std::uint64_t bytes) const {
  if (recorder_ != nullptr) {
    wall_timer t;
    read_at_raw(offset, dst, bytes);
    recorder_->record(bytes, t.elapsed_us());
    return;
  }
  read_at_raw(offset, dst, bytes);
}

void edge_file::read_at_raw(std::uint64_t offset, void* dst,
                            std::uint64_t bytes) const {
  auto* out = static_cast<char*>(dst);
  std::uint64_t done = 0;
  while (done < bytes) {
    const ssize_t got =
        ::pread(fd_, out + done, bytes - done,
                static_cast<off_t>(offset + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("edge_file: pread '" + path_ +
                               "': " + std::strerror(errno));
    }
    if (got == 0) {
      throw std::runtime_error("edge_file: unexpected EOF in '" + path_ + "'");
    }
    done += static_cast<std::uint64_t>(got);
  }
}

}  // namespace asyncgt::sem
