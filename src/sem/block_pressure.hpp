// Live per-block pending-visitor counts — the hot-block scheduling signal.
//
// ACGraph's out-of-core result (PAPERS.md) is that processing the blocks
// with the most pending updates first maximizes useful work per byte of
// I/O. The mailbox layer routes visitors by vertex, so nothing in the queue
// knows block occupancy; this tracker shifts that view: every visitor
// delivered to a mailbox bumps the pending count of the device block its
// adjacency list lives in (sem_hot_advisor maps vertex -> block via
// sem_csr::adjacency_block_of), and every completed visit undoes one bump.
// A block's pending count is therefore "how many queued visitors will need
// this block", which is exactly what the hot ordering mode, the
// pressure-weighted cache policy, and the prefetch lane consume.
//
// Layout: a dense array of relaxed per-block atomics (the block_heat
// idiom — no locks or hashing on the hot path) plus a small array of
// cache-line-padded shards for the aggregate increment/decrement totals, so
// hundreds of oversubscribed workers never rendezvous on one counter. The
// conservation law the tests pin: at quiescence,
//   total_increments() == mailbox deliveries == total_decrements()
//   == completed visits, and total_pending() == 0.
//
// All counts are relaxed-atomic heuristics, not a ledger: a stale read
// costs a little scheduling quality and nothing else (label correction
// keeps final labels pop-order-invariant).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "sem/block_index.hpp"
#include "util/cache_line.hpp"

namespace asyncgt::sem {

class block_pressure {
 public:
  /// `num_blocks` bounds the tracked block-id range (size it with
  /// sem_csr::heat_blocks_for, like block_heat); `block_bytes` is recorded
  /// for reporting. Adds at or past num_blocks land on the out-of-range
  /// counter instead of being dropped silently.
  explicit block_pressure(std::uint64_t num_blocks,
                          std::uint64_t block_bytes = default_block_bytes)
      : block_bytes_(block_bytes ? block_bytes : default_block_bytes),
        pending_(num_blocks) {}

  std::uint64_t num_blocks() const noexcept { return pending_.size(); }
  std::uint64_t block_bytes() const noexcept { return block_bytes_; }

  /// One visitor whose adjacency lives in `block` was enqueued. Returns the
  /// block's new pending count (0 for an out-of-range block), which is what
  /// the advisor's threshold-crossing prefetch trigger keys on.
  std::uint32_t add(std::uint64_t block) noexcept {
    if (block >= pending_.size()) {
      out_of_range_.fetch_add(1, std::memory_order_relaxed);
      return 0;
    }
    const std::uint32_t now =
        pending_[block].fetch_add(1, std::memory_order_relaxed) + 1;
    shard_for(block).increments.fetch_add(1, std::memory_order_relaxed);
    return now;
  }

  /// One visitor whose adjacency lives in `block` finished executing.
  /// Clamped at zero: a remove that races reset() (or lands out of range)
  /// must not wrap the block's count to 2^32.
  void remove(std::uint64_t block) noexcept {
    if (block >= pending_.size()) return;
    const std::uint32_t prev =
        pending_[block].fetch_sub(1, std::memory_order_relaxed);
    if (prev == 0) {
      pending_[block].fetch_add(1, std::memory_order_relaxed);
      return;
    }
    shard_for(block).decrements.fetch_add(1, std::memory_order_relaxed);
  }

  /// Queued visitors currently waiting on `block` (0 out of range).
  std::uint32_t pending(std::uint64_t block) const noexcept {
    return block < pending_.size()
               ? pending_[block].load(std::memory_order_relaxed)
               : 0;
  }

  std::uint64_t out_of_range() const noexcept {
    return out_of_range_.load(std::memory_order_relaxed);
  }

  /// Aggregate totals (scrape-time shard walk, like the registries).
  std::uint64_t total_increments() const noexcept;
  std::uint64_t total_decrements() const noexcept;
  /// increments - decrements: in-flight pressure. Exact at quiescence.
  std::uint64_t total_pending() const noexcept;

  /// Drops everything back to zero — per-block counts AND the aggregate
  /// totals (post-abort reset: the queued visitors whose enqueues were
  /// counted have been discarded, so keeping their increments would break
  /// the pending == increments - decrements consistency the report checker
  /// validates). Clean runs never reset, so conservation accumulates across
  /// consecutive successful runs.
  void reset() noexcept;

 private:
  struct alignas(cache_line_size) shard {
    std::atomic<std::uint64_t> increments{0};
    std::atomic<std::uint64_t> decrements{0};
  };
  static constexpr std::size_t num_shards = 16;  // power of two

  shard& shard_for(std::uint64_t block) noexcept {
    return shards_[block & (num_shards - 1)];
  }

  std::uint64_t block_bytes_;
  std::vector<std::atomic<std::uint32_t>> pending_;
  shard shards_[num_shards];
  std::atomic<std::uint64_t> out_of_range_{0};
};

}  // namespace asyncgt::sem
