// Internal: concrete io_backend implementations shared between
// io_backend.cpp and the optional uring_backend.cpp. Not part of the public
// surface — include io_backend.hpp instead; tests that need a concrete
// class go through make_io_backend and the base interface.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sem/io_backend.hpp"

namespace asyncgt::sem::detail {

/// One pread per logical request — the pre-backend read path, bit for bit.
class sync_backend final : public io_backend {
 public:
  explicit sync_backend(edge_file& file) noexcept : io_backend(file) {}

  const char* name() const noexcept override { return "sync"; }
  io_backend_kind kind() const noexcept override {
    return io_backend_kind::sync;
  }
  void read(const io_request& req) override;
};

/// Per-thread coalescing scheduler: staged requests merge into preadv
/// batches; single reads refill a block-aligned readahead window. See the
/// io_backend.hpp header comment for the full design.
class coalescing_backend : public io_backend {
 public:
  coalescing_backend(edge_file& file, const io_backend_config& cfg,
                     block_cache* cache);
  ~coalescing_backend() override;

  const char* name() const noexcept override { return "coalescing"; }
  io_backend_kind kind() const noexcept override {
    return io_backend_kind::coalescing;
  }
  void read(const io_request& req) override;
  void enqueue(const io_request& req) override;
  void flush() override;

 protected:
  /// A filled stretch of the file kept per thread; requests landing inside
  /// it are served by memcpy (counted as coalesced, zero syscalls).
  struct window {
    std::uint64_t off = 0;
    std::uint64_t len = 0;  // 0 = empty
    std::vector<char> buf;
  };

  /// Per-thread state. Each lane is only ever touched by the thread that
  /// owns its index, so no locking: window 0 serves stream 0 (targets),
  /// window 1 serves stream 1 (weights).
  struct lane {
    window win[2];
    std::vector<io_request> staged;
  };

  /// One contiguous range assembled by flush_lane: `slices` partition
  /// [offset, offset + bytes) in file order.
  struct merged_io {
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    std::vector<io_slice> slices;
  };

  /// Issues one merged range as one device operation (edge_file::readv_at:
  /// one fault plan, retry/backoff, split-on-permanent-failure). Overridden
  /// by uring_backend's submission path.
  virtual void issue(const merged_io& io);

  /// Issues a flush's worth of merged ranges. Default: sequentially via
  /// issue(); uring_backend overrides to keep a bounded in-flight window.
  virtual void issue_batch(std::vector<merged_io>& batch);

  lane& my_lane();

  const io_backend_config cfg_;
  block_cache* cache_;

 private:
  bool serve_from_window(lane& ln, const io_request& req) noexcept;
  void fill_window(lane& ln, const io_request& req);
  void flush_lane(lane& ln);

  // Lanes live in a fixed two-level table indexed by a process-wide thread
  // index: lock-free lookup, no dangling pointers across backend lifetimes,
  // memory bounded by the number of threads that actually touch this
  // backend (chunks allocate on first use).
  static constexpr std::size_t kChunkSize = 64;
  static constexpr std::size_t kChunks = 256;  // 16384 threads before overflow
  struct chunk {
    lane lanes[kChunkSize];
  };
  std::array<std::atomic<chunk*>, kChunks> chunks_{};
  std::mutex overflow_mu_;
  std::unordered_map<std::uint32_t, std::unique_ptr<lane>> overflow_;
};

#if defined(ASYNCGT_WITH_URING)
/// Defined in uring_backend.cpp.
bool uring_runtime_available() noexcept;
std::unique_ptr<io_backend> make_uring_backend(edge_file& file,
                                               const io_backend_config& cfg,
                                               block_cache* cache);
#endif

}  // namespace asyncgt::sem::detail
