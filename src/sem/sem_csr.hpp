// Semi-external CSR graph storage (paper §IV-C).
//
// "We define a semi-external graph as having enough memory to store
// algorithmic information about the vertices but not edges. The entire
// graph structure is stored on the persistent storage device, and the
// visitor queues and the output of the algorithm are stored in main memory."
//
// Concretely: the O(V) offset index is loaded into RAM at open time; every
// adjacency access pread()s the O(E) target (and weight) sections of the
// .agt file written by graph_io. Reads are charged to an attached ssd_model,
// which blocks the calling thread for the simulated device latency — this is
// where thread oversubscription converts into I/O concurrency.
//
// The class models the same GraphStorage concept as csr_graph, so async_bfs
// / async_sssp / async_cc instantiate over it unchanged.
//
// Reverse view. A SEM graph can carry an on-disk reverse edge file (the
// transpose, written by write_graph_with_reverse or ooc_builder's
// emit_reverse at reverse_path_for(path)): open_reverse() nests a second
// sem_csr over it sharing this graph's simulated device and I/O backend
// configuration, so in-edge reads go through the identical
// io_backend/block_cache/block_heat seam as out-edge reads. The reverse
// file is a separate byte space, so it takes its own (optional) block cache
// and heat recorder rather than colliding with the main file's block ids.
// This extends the concept with has_reverse() / in_degree(v) /
// for_each_in_edge(v, f) exactly like csr_graph.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "graph/graph_io.hpp"
#include "graph/types.hpp"
#include "sem/block_cache.hpp"
#include "sem/block_heat.hpp"
#include "sem/block_index.hpp"
#include "sem/edge_file.hpp"
#include "sem/io_backend.hpp"
#include "sem/ssd_model.hpp"

namespace asyncgt::sem {

template <typename VertexId>
class sem_csr {
 public:
  using vertex_id = VertexId;

  /// Opens an .agt graph written by write_graph(). `device` may be null to
  /// read at raw host speed; when set, every adjacency read blocks for the
  /// simulated service time. `cache` (optional) simulates the OS page cache:
  /// blocks that hit it are not charged to the device, which is how the
  /// semi-sort locality optimization and the paper's partial-caching regime
  /// become measurable. Both are borrowed, not owned, so graphs can share a
  /// device/cache and benches can swap them per run.
  explicit sem_csr(const std::string& path, ssd_model* device = nullptr,
                   block_cache* cache = nullptr)
      : file_(path), device_(device), cache_(cache) {
    const agt_header h = read_graph_header(path);
    if (h.wide_ids() != (sizeof(VertexId) == 8)) {
      throw std::runtime_error("sem_csr: vertex id width mismatch in '" +
                               path + "'");
    }
    // Validate the header against the actual file size BEFORE sizing the
    // in-memory index: a truncated or malformed header must produce a clean
    // error here, not a multi-GB allocation or out-of-range preads during
    // the traversal. The budget walk mirrors graph_io's reader and cannot
    // overflow (each section is bounded by what remains of the real file).
    std::uint64_t remaining = file_.size();
    if (remaining < sizeof(agt_header) || h.num_vertices == ~std::uint64_t{0}) {
      throw std::runtime_error("sem_csr: malformed header in '" + path + "'");
    }
    remaining -= sizeof(agt_header);
    const std::uint64_t nv1 = h.num_vertices + 1;
    if (nv1 > remaining / sizeof(std::uint64_t)) {
      throw std::runtime_error("sem_csr: '" + path +
                               "' is truncated (offset index exceeds file)");
    }
    remaining -= nv1 * sizeof(std::uint64_t);
    if (h.num_edges > remaining / sizeof(VertexId)) {
      throw std::runtime_error("sem_csr: '" + path +
                               "' is truncated (edge section exceeds file)");
    }
    remaining -= h.num_edges * sizeof(VertexId);
    if (h.weighted() && h.num_edges > remaining / sizeof(weight_t)) {
      throw std::runtime_error("sem_csr: '" + path +
                               "' is truncated (weight section exceeds file)");
    }
    header_ = h;
    offsets_.resize(nv1);
    file_.read_at(agt_offsets_pos, offsets_.data(),
                  offsets_.size() * sizeof(std::uint64_t));
    if (offsets_.front() != 0 || offsets_.back() != h.num_edges) {
      throw std::runtime_error("sem_csr: corrupt offset index in '" + path +
                               "' (bounds disagree with header)");
    }
    for (std::size_t v = 1; v < offsets_.size(); ++v) {
      if (offsets_[v] < offsets_[v - 1]) {
        throw std::runtime_error("sem_csr: corrupt offset index in '" + path +
                                 "' (offsets not monotone)");
      }
    }
    targets_pos_ = agt_targets_pos<VertexId>(h.num_vertices);
    weights_pos_ = agt_weights_pos<VertexId>(h.num_vertices, h.num_edges);
    backend_ = make_io_backend(file_, backend_cfg_, cache_);
  }

  // The backend holds a pointer to file_, so moves must rebind it onto the
  // destination's own members instead of inheriting the stale one. The
  // nested reverse graph rebinds itself through its own move, so its
  // unique_ptr just transfers.
  sem_csr(sem_csr&& other)
      : file_(std::move(other.file_)),
        device_(other.device_),
        cache_(other.cache_),
        heat_(other.heat_),
        header_(other.header_),
        offsets_(std::move(other.offsets_)),
        targets_pos_(other.targets_pos_),
        weights_pos_(other.weights_pos_),
        backend_cfg_(other.backend_cfg_),
        reverse_(std::move(other.reverse_)) {
    backend_ = make_io_backend(file_, backend_cfg_, cache_);
  }

  sem_csr& operator=(sem_csr&& other) {
    if (this != &other) {
      backend_.reset();
      file_ = std::move(other.file_);
      device_ = other.device_;
      cache_ = other.cache_;
      heat_ = other.heat_;
      header_ = other.header_;
      offsets_ = std::move(other.offsets_);
      targets_pos_ = other.targets_pos_;
      weights_pos_ = other.weights_pos_;
      backend_cfg_ = other.backend_cfg_;
      reverse_ = std::move(other.reverse_);
      backend_ = make_io_backend(file_, backend_cfg_, cache_);
    }
    return *this;
  }

  std::uint64_t num_vertices() const noexcept { return header_.num_vertices; }
  std::uint64_t num_edges() const noexcept { return header_.num_edges; }
  bool is_weighted() const noexcept { return header_.weighted(); }
  ssd_model* device() const noexcept { return device_; }
  block_cache* cache() const noexcept { return cache_; }

  // ---- Piecewise wiring setters ----
  //
  // DEPRECATED as a construction surface: new code builds a fully wired
  // graph (device, cache+policy, heat, pressure, backend, retries, faults,
  // recorder, prefetch, hot advisor) through the sem_config builder
  // (sem/sem_config.hpp) in one declaration. These setters remain as the
  // thin primitives the builder — and existing tests — compose from, and
  // keep their exact semantics; they are not going away, but call sites
  // wiring five of them by hand should migrate (docs/hot_blocks.md).

  /// Attaches a telemetry I/O recorder (borrowed, nullable) to the
  /// underlying edge file — and the reverse one, when open: every adjacency
  /// pread then reports bytes and host-side latency into its log2 histogram.
  void set_io_recorder(telemetry::io_recorder* recorder) noexcept {
    file_.set_recorder(recorder);
    if (reverse_) reverse_->set_io_recorder(recorder);
  }

  /// Attaches a fault injector (borrowed, nullable) to the underlying edge
  /// file (and the reverse one, when open): every adjacency pread then draws
  /// a fault plan first. Used by the fault-tolerance suite and the
  /// `--inject=` bench flag.
  void set_fault_injector(fault_injector* injector) noexcept {
    file_.set_fault_injector(injector);
    if (reverse_) reverse_->set_fault_injector(injector);
  }

  /// Replaces the transient-failure retry policy of the underlying file(s).
  void set_retry_policy(const io_retry_policy& policy) {
    file_.set_retry_policy(policy);
    if (reverse_) reverse_->set_retry_policy(policy);
  }

  /// Attaches a block-heat recorder (borrowed, nullable): every adjacency
  /// read then records the touched device blocks and whether each touch
  /// missed the cache. Block granularity follows the attached ssd_model
  /// when one is set, else the recorder's own block_bytes — size the
  /// recorder with heat_blocks_for(). With heat attached but no device, the
  /// charge walk still runs (to classify hits/misses) but charges nothing.
  /// When a cache is attached, recording lives inside the cache's own probe
  /// (block_cache::set_block_heat — the cache_policy seam), so heat misses
  /// agree with the cache's miss counters by construction.
  void set_block_heat(block_heat* heat) noexcept {
    heat_ = heat;
    if (cache_ != nullptr) cache_->set_block_heat(heat);
  }
  block_heat* heat() const noexcept { return heat_; }

  /// The block granularity every charge/heat/pressure derivation on this
  /// graph uses: the attached device's block_bytes, else the heat
  /// recorder's, else the 4 KiB default (block_index.hpp).
  std::uint64_t charge_block_bytes() const noexcept {
    if (device_ != nullptr) return device_->params().block_bytes;
    if (heat_ != nullptr) return heat_->block_bytes();
    return default_block_bytes;
  }

  /// Blocks needed to cover this file at the granularity charge_device will
  /// use — pass to block_heat's / block_pressure's constructor.
  std::uint64_t heat_blocks_for(std::uint64_t block_bytes = 4096) const {
    const std::uint64_t bs =
        device_ != nullptr ? device_->params().block_bytes : block_bytes;
    return blocks_covering(file_.size(), bs);
  }

  /// The device block holding the first bytes of v's adjacency list — the
  /// vertex -> block mapping the hot-block advisor keys pressure, residency,
  /// and prefetch by. (An adjacency list can span several blocks; the head
  /// block is the representative, which keeps the mapping O(1).)
  std::uint64_t adjacency_block_of(VertexId v) const noexcept {
    return block_index_of(targets_pos_ + offsets_[v] * sizeof(VertexId),
                          charge_block_bytes());
  }

  /// Swaps the I/O backend every adjacency read routes through (default:
  /// sync). One backend instance serves all jobs traversing this graph —
  /// per-thread state lives inside it — but the swap itself must happen
  /// before traversals start, not while readers are in flight.
  void set_io_backend(const io_backend_config& cfg) {
    backend_cfg_ = cfg;
    backend_ = make_io_backend(file_, backend_cfg_, cache_);
    if (reverse_) reverse_->set_io_backend(cfg);
  }
  io_backend& backend() const noexcept { return *backend_; }
  const io_backend_config& backend_config() const noexcept {
    return backend_cfg_;
  }

  // ---- Reverse (transpose) view ----

  /// Opens the on-disk reverse edge file (reverse_path_for(path), written
  /// by write_graph_with_reverse or ooc_builder's emit_reverse) as a nested
  /// sem_csr sharing this graph's simulated device, I/O backend config, and
  /// retry policy. The reverse file is its own byte space, so it takes its
  /// own optional block cache / heat recorder instead of aliasing the main
  /// file's block ids. Throws if the file is missing or does not transpose
  /// this graph. Idempotent; call before traversals start, like
  /// set_io_backend.
  void open_reverse(block_cache* reverse_cache = nullptr,
                    block_heat* reverse_heat = nullptr) {
    if (reverse_) return;
    auto rev = std::make_unique<sem_csr>(reverse_path_for(file_.path()),
                                         device_, reverse_cache);
    if (rev->num_vertices() != num_vertices() ||
        rev->num_edges() != num_edges()) {
      throw std::runtime_error(
          "sem_csr: '" + reverse_path_for(file_.path()) +
          "' does not transpose '" + file_.path() +
          "' (vertex/edge counts disagree)");
    }
    rev->set_io_backend(backend_cfg_);
    rev->set_block_heat(reverse_heat);
    reverse_ = std::move(rev);
  }

  bool has_reverse() const noexcept { return reverse_ != nullptr; }

  /// The nested reverse graph (its out-edges are this graph's in-edges).
  /// Requires has_reverse().
  sem_csr& reverse() noexcept { return *reverse_; }
  const sem_csr& reverse() const noexcept { return *reverse_; }

  /// In-degree of v. Requires has_reverse().
  std::uint64_t in_degree(VertexId v) const noexcept {
    return reverse_->out_degree(v);
  }

  /// Reads v's in-adjacency from the reverse file and invokes
  /// f(source, weight) per in-edge — same I/O charging as out-edge reads,
  /// against the reverse file's own cache/heat. Requires has_reverse().
  template <typename F>
  void for_each_in_edge(VertexId v, F&& f) const {
    reverse_->for_each_out_edge(v, std::forward<F>(f));
  }

  std::uint64_t out_degree(VertexId v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Reads the adjacency list of v from disk and invokes f(target, weight)
  /// per edge. One random read for targets plus, on weighted graphs, one for
  /// weights; the thread blocks for the simulated device time of each.
  template <typename F>
  void for_each_out_edge(VertexId v, F&& f) const {
    const std::uint64_t begin = offsets_[v];
    const std::uint64_t end = offsets_[v + 1];
    const std::uint64_t degree = end - begin;
    if (degree == 0) return;

    thread_local std::vector<VertexId> targets;
    thread_local std::vector<weight_t> weights;
    targets.resize(degree);
    const std::uint64_t tbytes = degree * sizeof(VertexId);
    const std::uint64_t tpos = targets_pos_ + begin * sizeof(VertexId);
    // Device/cache charging stays per logical request regardless of how the
    // backend batches the host reads, so simulated-device accounting is
    // identical across backends.
    charge_device(tpos, tbytes);
    if (header_.weighted()) {
      weights.resize(degree);
      const std::uint64_t wbytes = degree * sizeof(weight_t);
      const std::uint64_t wpos = weights_pos_ + begin * sizeof(weight_t);
      charge_device(wpos, wbytes);
      backend_->enqueue({tpos, tbytes, targets.data(), 0});
      backend_->enqueue({wpos, wbytes, weights.data(), 1});
      backend_->flush();
      for (std::uint64_t i = 0; i < degree; ++i) f(targets[i], weights[i]);
    } else {
      backend_->read({tpos, tbytes, targets.data(), 0});
      for (std::uint64_t i = 0; i < degree; ++i) f(targets[i], weight_t{1});
    }
  }

  /// In-memory bytes held by this storage: the vertex index only — the
  /// "semi" in semi-external — doubled when the reverse view is open.
  std::uint64_t memory_bytes() const noexcept {
    return offsets_.size() * sizeof(std::uint64_t) +
           (reverse_ ? reverse_->memory_bytes() : 0);
  }

  /// On-device bytes (the paper's "Size on EM device" column).
  std::uint64_t device_bytes() const noexcept {
    return file_.size() + (reverse_ ? reverse_->device_bytes() : 0);
  }

  /// Resident heap footprint for the service engine's memory-budget
  /// admission guardrail: the in-memory vertex index (memory_bytes) plus
  /// the attached block cache's modeled page-cache share when this storage
  /// owns one. Alias of the budget convention csr_graph::resident_bytes
  /// established for the in-memory backend.
  std::uint64_t resident_bytes() const noexcept {
    const std::uint64_t bs =
        device_ != nullptr ? device_->params().block_bytes : 4096;
    return memory_bytes() +
           (cache_ != nullptr ? cache_->resident_bytes(bs) : 0);
  }

 private:
  /// Charges the device for the blocks of [pos, pos+bytes) that miss the
  /// simulated page cache (all of them when no cache is attached). Heat
  /// recording rides the cache's own probe when a cache is attached (the
  /// probe that decides the charge is the probe that is recorded — the
  /// cache_policy seam, block_cache::set_block_heat — so heat misses agree
  /// exactly with the cache's miss counters); with heat but no cache, every
  /// touch records as a miss here, matching the full charge.
  void charge_device(std::uint64_t pos, std::uint64_t bytes) const {
    if (heat_ == nullptr) {
      // No-heat fast path, bit-identical to the original accounting (in
      // particular: no device means no cache probes at all).
      if (device_ == nullptr) return;
      if (cache_ == nullptr) {
        device_->read(bytes);
        return;
      }
      const std::uint64_t bs = device_->params().block_bytes;
      const std::uint64_t first = block_index_of(pos, bs);
      const std::uint64_t last = block_index_of_last(pos, bytes, bs);
      std::uint64_t missing = 0;
      for (std::uint64_t b = first; b <= last; ++b) {
        missing += cache_->access(b) ? 0 : 1;
      }
      if (missing > 0) device_->read(missing * bs);
      return;
    }
    const std::uint64_t bs = charge_block_bytes();
    const std::uint64_t first = block_index_of(pos, bs);
    const std::uint64_t last = block_index_of_last(pos, bytes, bs);
    if (cache_ == nullptr) {
      for (std::uint64_t b = first; b <= last; ++b) heat_->record(b, true);
      // Match the cache-less fast path's charge (raw bytes, not whole
      // blocks) so attaching heat never changes simulated-device time.
      if (device_ != nullptr) device_->read(bytes);
      return;
    }
    std::uint64_t missing = 0;
    for (std::uint64_t b = first; b <= last; ++b) {
      missing += cache_->access(b) ? 0 : 1;  // the cache records heat
    }
    if (device_ != nullptr && missing > 0) device_->read(missing * bs);
  }

  edge_file file_;
  ssd_model* device_;
  block_cache* cache_ = nullptr;
  block_heat* heat_ = nullptr;
  agt_header header_;
  std::vector<std::uint64_t> offsets_;
  std::uint64_t targets_pos_ = 0;
  std::uint64_t weights_pos_ = 0;
  io_backend_config backend_cfg_;
  std::unique_ptr<io_backend> backend_;
  std::unique_ptr<sem_csr> reverse_;  // open_reverse(); null = no view
};

using sem_csr32 = sem_csr<vertex32>;
using sem_csr64 = sem_csr<vertex64>;

}  // namespace asyncgt::sem
