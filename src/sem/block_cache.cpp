#include "sem/block_cache.hpp"

#include <stdexcept>

namespace asyncgt::sem {

block_cache::block_cache(std::uint64_t capacity_blocks)
    : capacity_(capacity_blocks) {
  if (capacity_blocks == 0) {
    throw std::invalid_argument("block_cache: capacity must be positive");
  }
}

bool block_cache::access(std::uint64_t block) {
  std::lock_guard lk(mu_);
  const auto it = map_.find(block);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
    ++counters_.hits;
    return true;
  }
  ++counters_.misses;
  if (map_.size() >= capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++counters_.evictions;
  }
  lru_.push_front(block);
  map_[block] = lru_.begin();
  return false;
}

bool block_cache::contains(std::uint64_t block) const {
  std::lock_guard lk(mu_);
  return map_.find(block) != map_.end();
}

std::uint64_t block_cache::size() const {
  std::lock_guard lk(mu_);
  return map_.size();
}

cache_counters block_cache::counters() const {
  std::lock_guard lk(mu_);
  return counters_;
}

void block_cache::reset_counters() {
  std::lock_guard lk(mu_);
  counters_ = cache_counters{};
}

void block_cache::clear() {
  std::lock_guard lk(mu_);
  map_.clear();
  lru_.clear();
  counters_ = cache_counters{};
}

}  // namespace asyncgt::sem
