#include "sem/block_cache.hpp"

#include <stdexcept>
#include <utility>

namespace asyncgt::sem {

block_cache::block_cache(std::uint64_t capacity_blocks,
                         std::unique_ptr<cache_policy> policy)
    : capacity_(capacity_blocks), policy_(std::move(policy)) {
  if (capacity_blocks == 0) {
    throw std::invalid_argument("block_cache: capacity must be positive");
  }
  if (policy_ == nullptr) policy_ = std::make_unique<lru_policy>();
}

void block_cache::evict_one() {
  std::uint64_t rejects = 0;
  const auto victim = policy_->pick_victim(lru_, rejects);
  counters_.policy_rejects += rejects;
  if (victim->prefetched) ++counters_.prefetch_wasted;
  map_.erase(victim->block);
  lru_.erase(victim);
  ++counters_.evictions;
}

bool block_cache::access(std::uint64_t block) {
  std::lock_guard lk(mu_);
  const auto it = map_.find(block);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
    it->second->prefetched = false;  // first demand hit redeems a prefetch
    ++counters_.hits;
    policy_->on_touch(block);
    if (heat_ != nullptr) heat_->record(block, false);
    return true;
  }
  ++counters_.misses;
  if (heat_ != nullptr) heat_->record(block, true);
  if (!policy_->admit(block)) {
    ++counters_.policy_rejects;
    return false;
  }
  if (map_.size() >= capacity_) evict_one();
  lru_.push_front(cache_entry{block, false});
  map_[block] = lru_.begin();
  return false;
}

bool block_cache::install(std::uint64_t block) {
  std::lock_guard lk(mu_);
  if (map_.find(block) != map_.end()) return false;
  if (!policy_->admit(block)) {
    ++counters_.policy_rejects;
    return false;
  }
  if (map_.size() >= capacity_) evict_one();
  lru_.push_front(cache_entry{block, true});
  map_[block] = lru_.begin();
  ++counters_.prefetch_installs;
  return true;
}

bool block_cache::contains(std::uint64_t block) const {
  std::lock_guard lk(mu_);
  return map_.find(block) != map_.end();
}

void block_cache::set_block_heat(block_heat* heat) noexcept {
  std::lock_guard lk(mu_);
  heat_ = heat;
}

std::uint64_t block_cache::size() const {
  std::lock_guard lk(mu_);
  return map_.size();
}

cache_counters block_cache::counters() const {
  std::lock_guard lk(mu_);
  return counters_;
}

void block_cache::reset_counters() {
  std::lock_guard lk(mu_);
  counters_ = cache_counters{};
}

void block_cache::clear() {
  std::lock_guard lk(mu_);
  map_.clear();
  lru_.clear();
  counters_ = cache_counters{};
}

}  // namespace asyncgt::sem
