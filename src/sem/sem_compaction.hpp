// SEM overlay compaction: rewrite a delta_overlay's pinned edge set as a
// clean on-disk .agt through the ooc_builder seam.
//
// The in-memory path (delta_overlay::compact + write_graph) holds the
// materialized edge list; this path never does — it streams the view's
// edges straight into the external-sort builder, so compacting a
// semi-external graph keeps the semi-external memory profile. With
// emit_reverse (the default here, unlike the builder's) the .agt.rev
// companion is regenerated in the same pass, keeping the reverse view —
// which the incremental repair drivers depend on — valid across
// compactions.
//
// Output bytes are canonical: self-loop removal and dedup are forced OFF
// (the overlay IS the edge set; set semantics already deduplicated) and the
// builder's (src, dst, weight) record sort matches build_csr's adjacency
// sort, so the file is byte-identical to write_graph(overlay.compact()) —
// the property the dynamic battery asserts.
//
// Failure containment: any exception mid-write (including injected faults
// during a soak) removes the partial output and its .rev companion before
// rethrowing, so the previous epoch's files stay the only readable state —
// the same abort-containment contract as the rest of the SEM layer.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

#include "graph/delta_overlay.hpp"
#include "graph/graph_io.hpp"
#include "sem/ooc_builder.hpp"

namespace asyncgt::sem {

struct sem_compaction_options {
  std::uint64_t memory_budget_bytes = 64 << 20;
  std::filesystem::path scratch_dir =
      std::filesystem::temp_directory_path() / "asyncgt_compact";
  /// Regenerate the .agt.rev companion alongside the clean CSR. Defaults
  /// on: overlays feeding incremental repair need the reverse view.
  bool emit_reverse = true;
};

struct sem_compaction_stats {
  std::uint64_t epoch = 0;         ///< overlay epoch that was compacted
  std::uint64_t edges = 0;         ///< edges written to the clean CSR
  ooc_build_stats build;           ///< external-sort accounting
};

/// Streams `view`'s edge set into a clean .agt at `out_path` (plus .rev
/// companion when requested). On exception, removes partial outputs and
/// rethrows; existing files for other epochs are never touched.
template <typename Graph>
sem_compaction_stats compact_to_file(const overlay_view<Graph>& view,
                                     const std::string& out_path,
                                     const sem_compaction_options& opt = {}) {
  using V = typename Graph::vertex_id;
  ooc_build_options bopt;
  bopt.memory_budget_bytes = opt.memory_budget_bytes;
  bopt.scratch_dir = opt.scratch_dir;
  bopt.remove_self_loops = false;
  bopt.remove_duplicates = false;
  bopt.symmetrize = false;
  bopt.emit_reverse = opt.emit_reverse;

  sem_compaction_stats stats;
  stats.epoch = view.epoch();
  try {
    ooc_graph_builder<V> builder(view.num_vertices(), out_path, bopt);
    const std::uint64_t n = view.num_vertices();
    for (std::uint64_t u = 0; u < n; ++u) {
      view.for_each_out_edge(static_cast<V>(u), [&](V v, weight_t w) {
        builder.add_edge(static_cast<V>(u), v, w);
      });
    }
    stats.build = builder.finalize();
    stats.edges = stats.build.output_edges;
  } catch (...) {
    // Leave only the old epoch readable: scrub whatever partial output this
    // attempt produced (the builder writes directly to out_path).
    std::error_code ec;
    std::filesystem::remove(out_path, ec);
    std::filesystem::remove(reverse_path_for(out_path), ec);
    throw;
  }
  return stats;
}

}  // namespace asyncgt::sem
