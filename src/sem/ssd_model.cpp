#include "sem/ssd_model.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace asyncgt::sem {

ssd_model::ssd_model(ssd_params params) : params_(std::move(params)) {
  if (params_.channels == 0) {
    throw std::invalid_argument("ssd_model: need at least one channel");
  }
  if (params_.read_latency_us <= 0 || params_.write_latency_us <= 0 ||
      params_.time_scale <= 0) {
    throw std::invalid_argument("ssd_model: latencies must be positive");
  }
  if (params_.block_bytes == 0) {
    throw std::invalid_argument("ssd_model: block size must be positive");
  }
  channels_.reserve(params_.channels);
  for (std::uint32_t i = 0; i < params_.channels; ++i) {
    channels_.push_back(std::make_unique<channel>());
  }
}

ssd_model::clock::time_point ssd_model::reserve(double service_us) {
  const std::size_t idx =
      next_channel_.fetch_add(1, std::memory_order_relaxed) % channels_.size();
  channel& ch = *channels_[idx];
  const auto service = std::chrono::duration_cast<clock::duration>(
      std::chrono::duration<double, std::micro>(service_us *
                                                params_.time_scale));
  std::lock_guard lk(ch.mu);
  const auto now = clock::now();
  const auto start = ch.free_at > now ? ch.free_at : now;
  ch.free_at = start + service;
  return ch.free_at;
}

void ssd_model::read(std::uint64_t bytes) {
  const std::uint64_t blocks =
      bytes == 0 ? 1 : (bytes + params_.block_bytes - 1) / params_.block_bytes;
  const double service_us =
      params_.read_latency_us +
      static_cast<double>(blocks - 1) * params_.seq_block_us;
  const std::uint64_t depth =
      inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  const auto deadline = reserve(service_us);
  std::this_thread::sleep_until(deadline);
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  std::lock_guard lk(counter_mu_);
  ++counters_.reads;
  counters_.read_bytes += bytes;
  counters_.read_blocks += blocks;
  counters_.max_inflight = std::max(counters_.max_inflight, depth);
}

void ssd_model::write(std::uint64_t bytes) {
  const std::uint64_t blocks =
      bytes == 0 ? 1 : (bytes + params_.block_bytes - 1) / params_.block_bytes;
  const double service_us =
      params_.write_latency_us +
      static_cast<double>(blocks - 1) * params_.seq_block_us;
  const std::uint64_t depth =
      inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  const auto deadline = reserve(service_us);
  std::this_thread::sleep_until(deadline);
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  std::lock_guard lk(counter_mu_);
  ++counters_.writes;
  counters_.write_bytes += bytes;
  counters_.max_inflight = std::max(counters_.max_inflight, depth);
}

ssd_counters ssd_model::counters() const {
  std::lock_guard lk(counter_mu_);
  return counters_;
}

void ssd_model::reset_counters() {
  std::lock_guard lk(counter_mu_);
  counters_ = ssd_counters{};
}

}  // namespace asyncgt::sem
