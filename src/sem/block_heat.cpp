#include "sem/block_heat.hpp"

#include <algorithm>

namespace asyncgt::sem {

std::uint64_t block_heat::total_accesses() const noexcept {
  std::uint64_t n = 0;
  for (const auto& a : accesses_) n += a.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t block_heat::total_misses() const noexcept {
  std::uint64_t n = 0;
  for (const auto& m : misses_) n += m.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t block_heat::blocks_touched() const noexcept {
  std::uint64_t n = 0;
  for (const auto& a : accesses_) {
    if (a.load(std::memory_order_relaxed) != 0) ++n;
  }
  return n;
}

std::vector<block_heat::entry> block_heat::top_k(std::size_t k) const {
  std::vector<entry> touched;
  for (std::uint64_t b = 0; b < accesses_.size(); ++b) {
    const std::uint64_t a = accesses_[b].load(std::memory_order_relaxed);
    if (a == 0) continue;
    touched.push_back({b, a, misses_[b].load(std::memory_order_relaxed)});
  }
  const std::size_t n = std::min(k, touched.size());
  std::partial_sort(touched.begin(), touched.begin() + static_cast<std::ptrdiff_t>(n),
                    touched.end(), [](const entry& x, const entry& y) {
                      if (x.accesses != y.accesses) {
                        return x.accesses > y.accesses;
                      }
                      return x.block < y.block;
                    });
  touched.resize(n);
  return touched;
}

void block_heat::reset() noexcept {
  for (auto& a : accesses_) a.store(0, std::memory_order_relaxed);
  for (auto& m : misses_) m.store(0, std::memory_order_relaxed);
  out_of_range_.store(0, std::memory_order_relaxed);
}

}  // namespace asyncgt::sem
