// Centralized block-id math for the semi-external layer.
//
// The block cache, the block-heat recorder, the pending-visitor pressure
// tracker, and the prefetch lane all key their state by device block index.
// Before this helper each of them derived the index locally (pos / bs with
// a locally-chosen bs), and they disagreed when weighted edges changed the
// byte stride of an adjacency list: heat sized its table from its own
// block_bytes while the charge walk used the device's, so the same logical
// block landed on different ids. Every byte-position -> block-id conversion
// now goes through block_index_of() with ONE granularity chosen by the
// caller that owns the device (sem_csr prefers the attached ssd_model's
// block_bytes, falling back to the 4 KiB NAND page every preset uses).
#pragma once

#include <cstdint>

namespace asyncgt::sem {

/// The default granularity when no ssd_model supplies one (the 4 KiB NAND
/// page size every device preset uses).
inline constexpr std::uint64_t default_block_bytes = 4096;

/// Block index containing byte position `pos` at `block_bytes` granularity.
/// A zero granularity is treated as the default rather than dividing by
/// zero — callers pass through whatever the device/heat recorder carries.
constexpr std::uint64_t block_index_of(std::uint64_t pos,
                                       std::uint64_t block_bytes) noexcept {
  return pos / (block_bytes == 0 ? default_block_bytes : block_bytes);
}

/// Last block index touched by the byte range [pos, pos + bytes).
/// Requires bytes >= 1 (a zero-length read touches no block; callers guard).
constexpr std::uint64_t block_index_of_last(
    std::uint64_t pos, std::uint64_t bytes,
    std::uint64_t block_bytes) noexcept {
  return block_index_of(pos + bytes - 1, block_bytes);
}

/// Blocks needed to cover `file_bytes` at `block_bytes` granularity.
constexpr std::uint64_t blocks_covering(std::uint64_t file_bytes,
                                        std::uint64_t block_bytes) noexcept {
  const std::uint64_t bs =
      block_bytes == 0 ? default_block_bytes : block_bytes;
  return (file_bytes + bs - 1) / bs;
}

}  // namespace asyncgt::sem
