// Deterministic, seedable storage-fault injection for the SEM I/O layer.
//
// The paper's semi-external claim is only credible if a traversal survives
// the failure modes a flash device under millions of concurrent random
// reads actually exhibits: transient EIO/EAGAIN, short reads, and latency
// spikes. This injector manufactures exactly those, in-process and
// reproducibly, so the retry policy in edge_file and the failure
// containment in the traversal engine can be exercised by tests and benches
// (`--inject=...`) instead of waiting for real hardware to misbehave.
//
// Model. Each read operation draws one fault *plan* from a counter-indexed
// random stream: operation k uses an xoshiro stream seeded by
// splitmix(seed, k), so a given seed produces the identical fault sequence
// for the identical operation sequence — single-threaded replays are
// bit-reproducible, and multithreaded runs draw from the same deterministic
// population (which faults land on which reads depends on scheduling, but
// the fault rate and shape do not). Faults are injected by probability, or
// deterministically by byte range ("bad sectors": every read overlapping
// [bad_begin, bad_end) fails until the retry budget is exhausted).
//
// Transient faults are bounded per operation (`fail_attempts` consecutive
// failures, then the read succeeds), so a retry policy with max_retries >=
// fail_attempts always recovers and an injected-fault run must finish with
// labels identical to the fault-free run. `fatal = true` marks injected
// errors as non-retryable instead — the path used to drive the engine's
// abort machinery. See docs/robustness.md.
#pragma once

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace asyncgt::sem {

struct fault_config {
  std::uint64_t seed = 1;
  double p_eio = 0.0;     ///< probability of a transient EIO burst per read
  double p_eagain = 0.0;  ///< probability of a transient EAGAIN burst
  double p_short = 0.0;   ///< probability the first pread returns short
  double p_delay = 0.0;   ///< probability of a latency spike
  /// Probability a read *stalls*: blocks indefinitely — a hung device or a
  /// wedged kernel path — until either the injector's release_stalls()
  /// one-way latch flips or the job's cancellation hint fires (the reader
  /// polls metric_scope::current_abort_requested and unwinds by throwing
  /// operation_cancelled). stall=1 stalls every read, the deterministic
  /// setting the watchdog's stalled-job tests use. docs/robustness.md.
  double p_stall = 0.0;
  std::uint32_t delay_us = 2000;      ///< latency spike duration
  std::uint32_t fail_attempts = 2;    ///< consecutive failures per faulted op
  bool fatal = false;                 ///< injected errors are non-retryable
  /// "Bad sector" byte range: every read overlapping [bad_begin, bad_end)
  /// fails with EIO on every attempt (persistent media error). Empty when
  /// bad_begin >= bad_end.
  std::uint64_t bad_begin = 0;
  std::uint64_t bad_end = 0;

  void validate() const {
    for (const double p : {p_eio, p_eagain, p_short, p_delay, p_stall}) {
      if (p < 0.0 || p > 1.0) {
        throw std::invalid_argument(
            "fault_config: probabilities must be in [0,1]");
      }
    }
    if (fail_attempts == 0) {
      throw std::invalid_argument("fault_config: fail_attempts must be >= 1");
    }
  }
};

/// What one read operation should suffer. Attempts [0, fail_attempts) of
/// the operation raise `err`; the first attempt past the failures is
/// truncated to `short_len` bytes when nonzero; `delay_us` is slept before
/// the first attempt. A zeroed plan is a clean read.
struct fault_plan {
  std::uint32_t fail_attempts = 0;
  int err = 0;
  bool fatal = false;
  std::uint64_t short_len = 0;
  std::uint32_t delay_us = 0;
  bool stall = false;  ///< block until release/cancellation (see p_stall)
};

class fault_injector {
 public:
  struct fault_counters {
    std::uint64_t ops = 0;        ///< operations that drew a plan
    std::uint64_t errors = 0;     ///< ops planned to raise an errno
    std::uint64_t shorts = 0;     ///< ops planned to return short
    std::uint64_t delays = 0;     ///< ops planned to delay
    std::uint64_t range_hits = 0; ///< ops overlapping the bad byte range
    std::uint64_t stalls = 0;     ///< ops planned to stall indefinitely
  };

  explicit fault_injector(const fault_config& cfg) : cfg_(cfg) {
    cfg_.validate();
  }

  fault_injector(const fault_injector&) = delete;
  fault_injector& operator=(const fault_injector&) = delete;

  const fault_config& config() const noexcept { return cfg_; }

  /// Draws the plan for one read of `bytes` at `offset`. Thread-safe: the
  /// operation index comes from one atomic counter and all randomness is a
  /// pure function of (seed, index).
  fault_plan plan(std::uint64_t offset, std::uint64_t bytes) noexcept {
    const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
    ops_.fetch_add(1, std::memory_order_relaxed);
    fault_plan out;
    if (disarmed_.load(std::memory_order_relaxed)) return out;

    // Persistent bad range dominates every probabilistic draw: real media
    // defects do not go away because the dice said so.
    if (cfg_.bad_begin < cfg_.bad_end && offset < cfg_.bad_end &&
        offset + bytes > cfg_.bad_begin) {
      range_hits_.fetch_add(1, std::memory_order_relaxed);
      errors_.fetch_add(1, std::memory_order_relaxed);
      out.err = EIO;
      out.fatal = cfg_.fatal;
      // Bad sectors fail on every attempt; the retry policy's budget, not
      // the injector, decides when the reader gives up.
      out.fail_attempts = ~std::uint32_t{0};
      return out;
    }

    splitmix64 mix(cfg_.seed ^ (seq * 0x9E3779B97F4A7C15ULL) ^ seq);
    xoshiro256ss rng(mix.next());
    const double e = rng.next_double();
    if (e < cfg_.p_eio) {
      out.err = EIO;
    } else if (e < cfg_.p_eio + cfg_.p_eagain) {
      out.err = EAGAIN;
    }
    if (out.err != 0) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      out.fatal = cfg_.fatal;
      out.fail_attempts = cfg_.fail_attempts;
    }
    if (bytes > 1 && rng.next_double() < cfg_.p_short) {
      shorts_.fetch_add(1, std::memory_order_relaxed);
      out.short_len = 1 + rng.next_below(bytes - 1);  // in [1, bytes-1]
    }
    if (rng.next_double() < cfg_.p_delay) {
      delays_.fetch_add(1, std::memory_order_relaxed);
      out.delay_us = cfg_.delay_us;
    }
    if (!stalls_released_.load(std::memory_order_relaxed) &&
        rng.next_double() < cfg_.p_stall) {
      stalls_.fetch_add(1, std::memory_order_relaxed);
      out.stall = true;
    }
    return out;
  }

  fault_counters counters() const noexcept {
    fault_counters c;
    c.ops = ops_.load(std::memory_order_relaxed);
    c.errors = errors_.load(std::memory_order_relaxed);
    c.shorts = shorts_.load(std::memory_order_relaxed);
    c.delays = delays_.load(std::memory_order_relaxed);
    c.range_hits = range_hits_.load(std::memory_order_relaxed);
    c.stalls = stalls_.load(std::memory_order_relaxed);
    return c;
  }

  /// Arm/disarm toggle. While disarmed, plan() returns the no-fault plan
  /// (counters still count ops) — the device behaves healthily. Two uses:
  /// scoping faults to one phase of a run (agt_tool update
  /// --inject-at=compact constructs disarmed and arms only for the
  /// compaction pass), and separating a failure's blast radius from the
  /// data it must not have corrupted (after a fatally-injected compaction
  /// fails, disarm and sweep the pinned overlay epoch to prove it is still
  /// fully readable — the question is the epoch's integrity, not the dead
  /// device's). disarm() also releases in-progress stalls; that latch stays
  /// released across a re-arm.
  void arm() noexcept { disarmed_.store(false, std::memory_order_relaxed); }
  void disarm() noexcept {
    disarmed_.store(true, std::memory_order_relaxed);
    release_stalls();
  }
  bool disarmed() const noexcept {
    return disarmed_.load(std::memory_order_relaxed);
  }

  /// One-way "device recovered" latch: ends every in-progress stall and
  /// stops planning new ones. Not cleared by reset() — a test that released
  /// the device keeps it released for subsequent runs.
  void release_stalls() noexcept {
    stalls_released_.store(true, std::memory_order_relaxed);
  }
  bool stalls_released() const noexcept {
    return stalls_released_.load(std::memory_order_relaxed);
  }

  /// Re-arms for a fresh run: operation indices restart at zero, so the
  /// next run replays the identical fault sequence.
  void reset() noexcept {
    seq_.store(0, std::memory_order_relaxed);
    ops_.store(0, std::memory_order_relaxed);
    errors_.store(0, std::memory_order_relaxed);
    shorts_.store(0, std::memory_order_relaxed);
    delays_.store(0, std::memory_order_relaxed);
    range_hits_.store(0, std::memory_order_relaxed);
    stalls_.store(0, std::memory_order_relaxed);
  }

 private:
  fault_config cfg_;
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> ops_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> shorts_{0};
  std::atomic<std::uint64_t> delays_{0};
  std::atomic<std::uint64_t> range_hits_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<bool> stalls_released_{false};
  std::atomic<bool> disarmed_{false};
};

/// Parses the CLI fault spec accepted by benches and agt_tool:
///   --inject=eio=0.01,eagain=0.005,short=0.02,delay=0.01,delay-us=500,
///            attempts=2,seed=7,fatal,bad=4096-8192,stall=0.001
/// (`stall=P` blocks the read until cancellation — stall=1 for the
/// deterministic every-read form; full grammar in docs/robustness.md.)
/// Unknown keys and malformed values throw std::invalid_argument.
inline fault_config parse_fault_config(const std::string& spec) {
  fault_config cfg;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string tok = spec.substr(pos, end - pos);
    pos = end + 1;
    if (tok.empty()) continue;
    const std::size_t eq = tok.find('=');
    const std::string key = tok.substr(0, eq);
    const std::string val =
        eq == std::string::npos ? std::string() : tok.substr(eq + 1);
    const auto need = [&]() -> const std::string& {
      if (val.empty()) {
        throw std::invalid_argument("fault spec: '" + key +
                                    "' needs a value");
      }
      return val;
    };
    try {
      if (key == "eio") {
        cfg.p_eio = std::stod(need());
      } else if (key == "eagain") {
        cfg.p_eagain = std::stod(need());
      } else if (key == "short") {
        cfg.p_short = std::stod(need());
      } else if (key == "delay") {
        cfg.p_delay = std::stod(need());
      } else if (key == "stall") {
        cfg.p_stall = std::stod(need());
      } else if (key == "delay-us") {
        cfg.delay_us = static_cast<std::uint32_t>(std::stoul(need()));
      } else if (key == "attempts") {
        cfg.fail_attempts = static_cast<std::uint32_t>(std::stoul(need()));
      } else if (key == "seed") {
        cfg.seed = std::stoull(need());
      } else if (key == "fatal") {
        cfg.fatal = true;
      } else if (key == "bad") {
        const std::string& v = need();
        const std::size_t dash = v.find('-');
        if (dash == std::string::npos) {
          throw std::invalid_argument("fault spec: bad=LO-HI");
        }
        cfg.bad_begin = std::stoull(v.substr(0, dash));
        cfg.bad_end = std::stoull(v.substr(dash + 1));
      } else {
        throw std::invalid_argument("fault spec: unknown key '" + key + "'");
      }
    } catch (const std::invalid_argument&) {
      throw;
    } catch (const std::exception&) {
      throw std::invalid_argument("fault spec: bad value in '" + tok + "'");
    }
  }
  cfg.validate();
  return cfg;
}

}  // namespace asyncgt::sem
