// Pluggable batched I/O backends for semi-external storage.
//
// The paper reaches peak random-read IOPS by oversubscribing threads so
// that many blocking preads are in flight at once; modern out-of-core
// systems (ACGraph et al., PAPERS.md) reach the same device concurrency
// with far fewer threads by issuing *batched, coalesced* block requests.
// This header is the seam between those two worlds: every adjacency read
// of a sem_csr flows through an io_backend, and the backend decides how
// logical requests become syscalls.
//
//   sync_backend        one pread per request — the behaviour-identical
//                       default (exactly the pre-backend read path).
//   coalescing_backend  per-thread staging: requests merge with adjacent /
//                       overlapping ranges into preadv batches, and single
//                       reads are extended into a block-aligned readahead
//                       window of `batch` blocks. The semi-sorted SEM visit
//                       order (§IV-C) makes consecutive requests adjacent
//                       in the file, so most requests are served from the
//                       window without a syscall. Speculative readahead is
//                       trimmed at blocks already resident in the shared
//                       block_cache (they are cheap re-reads anyway).
//   uring_backend       (-DASYNCGT_WITH_URING) submits the same merged
//                       batches through io_uring with a bounded in-flight
//                       window; falls back to the synchronous path when
//                       the ring is unavailable or a fault injector is
//                       attached (plans must be drawn per logical op).
//
// Failure model (docs/io_backends.md, docs/robustness.md): every syscall a
// backend issues goes through edge_file's retry/backoff loop, and faults
// are drawn per *merged range*. When a merged range fails permanently the
// batch is split — each staged request is re-issued on its own — so a bad
// sector can only fail requests whose own bytes overlap it, and traversal
// labels are bit-identical across backends, faults or not.
//
// Threading: one backend instance lives per sem_csr and is shared by every
// concurrent job traversing it. All per-thread state (windows, staged
// requests) lives in lanes indexed by a process-wide thread index; counters
// are relaxed atomics. No locks on the read path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sem/edge_file.hpp"

namespace asyncgt::sem {

class block_cache;

enum class io_backend_kind { sync, coalescing, uring };

const char* to_string(io_backend_kind kind) noexcept;

/// Parses "sync" | "coalescing" | "uring" (the `--io-backend=` values).
/// Throws std::invalid_argument on anything else, including "uring" when
/// the tree was built without -DASYNCGT_WITH_URING.
io_backend_kind parse_io_backend_kind(const std::string& name);

/// The backends compiled into this build, in declaration order. "Every
/// compiled io_backend" in the differential and identity suites iterates
/// this list.
std::vector<io_backend_kind> compiled_io_backends();

/// True iff `kind` can actually run on this host. sync/coalescing always
/// can; uring probes io_uring_setup once (sandboxes and old kernels refuse
/// it) and remembers the answer.
bool io_backend_available(io_backend_kind kind) noexcept;

struct io_backend_config {
  io_backend_kind kind = io_backend_kind::sync;
  /// Batch depth: the readahead window in blocks for single reads, and the
  /// staged-request count that triggers an implicit flush.
  std::uint32_t batch = 8;
  /// Device block granularity for window alignment (4 KiB = the NAND page
  /// size every device preset uses).
  std::uint32_t block_bytes = 4096;

  void validate() const;
};

/// One logical read: `bytes` at `offset` into `dst`. `stream` is a window
/// affinity hint (0 = targets section, 1 = weights section): requests of
/// different streams keep separate readahead windows so a weighted
/// traversal's alternating target/weight reads do not thrash one window.
struct io_request {
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  void* dst = nullptr;
  std::uint32_t stream = 0;
};

struct io_backend_counters {
  std::uint64_t requests = 0;       ///< logical reads entering the backend
  std::uint64_t batches = 0;        ///< merged ranges issued to the kernel
  std::uint64_t bytes_issued = 0;   ///< bytes covered by issued batches
  std::uint64_t coalesced_ranges = 0;  ///< requests served w/o own syscall
  std::uint64_t split_batches = 0;  ///< merged issues split after failure
  std::uint64_t inflight_peak = 0;  ///< max concurrently issued batches

  /// The bench's bytes-per-syscall figure of merit.
  double bytes_per_batch() const noexcept {
    return batches == 0 ? 0.0
                        : static_cast<double>(bytes_issued) /
                              static_cast<double>(batches);
  }
};

class io_backend {
 public:
  explicit io_backend(edge_file& file) noexcept : file_(&file) {}
  virtual ~io_backend() = default;

  io_backend(const io_backend&) = delete;
  io_backend& operator=(const io_backend&) = delete;

  virtual const char* name() const noexcept = 0;
  virtual io_backend_kind kind() const noexcept = 0;

  /// Blocking read of one range; data is valid on return. Throws io_error
  /// exactly when the requested bytes cannot be read (see edge_file).
  virtual void read(const io_request& req) = 0;

  /// Stages a request on the calling thread's lane; the data is guaranteed
  /// present only after flush(). Backends without staging complete it
  /// immediately. Staged requests never outlive one adjacency access — the
  /// synchronous visitor contract is the engine's flush-on-idle.
  virtual void enqueue(const io_request& req) { read(req); }

  /// Completes every request the calling thread has staged.
  virtual void flush() {}

  io_backend_counters counters() const noexcept;
  void reset_counters() noexcept;

  edge_file& file() const noexcept { return *file_; }

 protected:
  /// Counter helpers shared by the implementations; all relaxed atomics,
  /// mirrored into the edge_file's io_recorder when one is attached.
  void count_requests(std::uint64_t n) noexcept;
  void count_batch(std::uint64_t bytes) noexcept;
  void count_coalesced(std::uint64_t n) noexcept;
  void count_split() noexcept;

  /// Unscoped in-flight bracket for asynchronous submission paths where the
  /// op outlives the submitting scope (io_uring). Prefer inflight_guard.
  void inflight_begin_raw() noexcept;
  void inflight_end_raw() noexcept;

  /// RAII bracket around one issued batch: maintains the in-flight peak in
  /// both the backend counters and the attached recorder.
  class inflight_guard {
   public:
    explicit inflight_guard(io_backend& b) noexcept;
    ~inflight_guard();
    inflight_guard(const inflight_guard&) = delete;
    inflight_guard& operator=(const inflight_guard&) = delete;

   private:
    io_backend& b_;
  };

  edge_file* file_;

 private:
  friend class inflight_guard;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> bytes_issued_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> splits_{0};
  std::atomic<std::uint64_t> inflight_{0};
  std::atomic<std::uint64_t> inflight_peak_{0};
};

/// Builds the backend selected by `cfg` over `file`. `cache` (borrowed,
/// nullable) is the shared block cache the coalescing scheduler consults to
/// trim speculative readahead. Throws std::invalid_argument on a bad
/// config and std::runtime_error for a uring request the host cannot serve.
std::unique_ptr<io_backend> make_io_backend(edge_file& file,
                                            const io_backend_config& cfg,
                                            block_cache* cache = nullptr);

}  // namespace asyncgt::sem
