#include "sem/io_backend.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "sem/block_cache.hpp"
#include "sem/io_backend_detail.hpp"

namespace asyncgt::sem {

namespace {

constexpr auto relaxed = std::memory_order_relaxed;

/// Small dense process-wide thread index: lanes live in flat tables instead
/// of hash maps keyed by std::thread::id, and the index stays valid for the
/// life of the thread regardless of how many backends it touches.
std::uint32_t this_thread_index() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t idx = next.fetch_add(1, relaxed);
  return idx;
}

}  // namespace

const char* to_string(io_backend_kind kind) noexcept {
  switch (kind) {
    case io_backend_kind::sync:
      return "sync";
    case io_backend_kind::coalescing:
      return "coalescing";
    case io_backend_kind::uring:
      return "uring";
  }
  return "unknown";
}

io_backend_kind parse_io_backend_kind(const std::string& name) {
  if (name == "sync") return io_backend_kind::sync;
  if (name == "coalescing") return io_backend_kind::coalescing;
  if (name == "uring") {
#if defined(ASYNCGT_WITH_URING)
    return io_backend_kind::uring;
#else
    throw std::invalid_argument(
        "io_backend 'uring' is not compiled into this build "
        "(reconfigure with -DASYNCGT_WITH_URING=ON)");
#endif
  }
  throw std::invalid_argument("unknown io_backend '" + name +
                              "' (expected sync, coalescing, or uring)");
}

std::vector<io_backend_kind> compiled_io_backends() {
  std::vector<io_backend_kind> kinds{io_backend_kind::sync,
                                     io_backend_kind::coalescing};
#if defined(ASYNCGT_WITH_URING)
  kinds.push_back(io_backend_kind::uring);
#endif
  return kinds;
}

bool io_backend_available(io_backend_kind kind) noexcept {
  switch (kind) {
    case io_backend_kind::sync:
    case io_backend_kind::coalescing:
      return true;
    case io_backend_kind::uring:
#if defined(ASYNCGT_WITH_URING)
      return detail::uring_runtime_available();
#else
      return false;
#endif
  }
  return false;
}

void io_backend_config::validate() const {
  if (batch == 0) {
    throw std::invalid_argument("io_backend_config: batch must be positive");
  }
  if (batch > 65536) {
    throw std::invalid_argument("io_backend_config: batch > 65536");
  }
  if (block_bytes == 0) {
    throw std::invalid_argument(
        "io_backend_config: block_bytes must be positive");
  }
}

io_backend_counters io_backend::counters() const noexcept {
  io_backend_counters c;
  c.requests = requests_.load(relaxed);
  c.batches = batches_.load(relaxed);
  c.bytes_issued = bytes_issued_.load(relaxed);
  c.coalesced_ranges = coalesced_.load(relaxed);
  c.split_batches = splits_.load(relaxed);
  c.inflight_peak = inflight_peak_.load(relaxed);
  return c;
}

void io_backend::reset_counters() noexcept {
  requests_.store(0, relaxed);
  batches_.store(0, relaxed);
  bytes_issued_.store(0, relaxed);
  coalesced_.store(0, relaxed);
  splits_.store(0, relaxed);
  inflight_peak_.store(0, relaxed);
}

void io_backend::count_requests(std::uint64_t n) noexcept {
  requests_.fetch_add(n, relaxed);
}

void io_backend::count_batch(std::uint64_t bytes) noexcept {
  batches_.fetch_add(1, relaxed);
  bytes_issued_.fetch_add(bytes, relaxed);
  if (auto* rec = file_->recorder()) rec->record_batch();
}

void io_backend::count_coalesced(std::uint64_t n) noexcept {
  coalesced_.fetch_add(n, relaxed);
  if (auto* rec = file_->recorder()) rec->record_coalesced(n);
}

void io_backend::count_split() noexcept { splits_.fetch_add(1, relaxed); }

void io_backend::inflight_begin_raw() noexcept {
  const std::uint64_t cur = inflight_.fetch_add(1, relaxed) + 1;
  std::uint64_t peak = inflight_peak_.load(relaxed);
  while (cur > peak &&
         !inflight_peak_.compare_exchange_weak(peak, cur, relaxed)) {
  }
  if (auto* rec = file_->recorder()) rec->inflight_begin();
}

void io_backend::inflight_end_raw() noexcept {
  inflight_.fetch_sub(1, relaxed);
  if (auto* rec = file_->recorder()) rec->inflight_end();
}

io_backend::inflight_guard::inflight_guard(io_backend& b) noexcept : b_(b) {
  b_.inflight_begin_raw();
}

io_backend::inflight_guard::~inflight_guard() { b_.inflight_end_raw(); }

namespace detail {

// ---------------------------------------------------------------- sync

void sync_backend::read(const io_request& req) {
  count_requests(1);
  if (req.bytes == 0) return;
  inflight_guard g(*this);
  file_->read_at(req.offset, req.dst, req.bytes);
  count_batch(req.bytes);
}

// ---------------------------------------------------------- coalescing

coalescing_backend::coalescing_backend(edge_file& file,
                                       const io_backend_config& cfg,
                                       block_cache* cache)
    : io_backend(file), cfg_(cfg), cache_(cache) {
  cfg_.validate();
}

coalescing_backend::~coalescing_backend() {
  for (auto& slot : chunks_) delete slot.load(relaxed);
}

coalescing_backend::lane& coalescing_backend::my_lane() {
  const std::uint32_t idx = this_thread_index();
  if (idx < kChunks * kChunkSize) {
    auto& slot = chunks_[idx / kChunkSize];
    chunk* c = slot.load(std::memory_order_acquire);
    if (c == nullptr) {
      auto* fresh = new chunk();
      if (slot.compare_exchange_strong(c, fresh, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        c = fresh;
      } else {
        delete fresh;  // lost the race; c now holds the winner
      }
    }
    return c->lanes[idx % kChunkSize];
  }
  std::lock_guard lk(overflow_mu_);
  auto& slot = overflow_[idx];
  if (slot == nullptr) slot = std::make_unique<lane>();
  return *slot;
}

bool coalescing_backend::serve_from_window(lane& ln,
                                           const io_request& req) noexcept {
  for (window& w : ln.win) {
    if (w.len == 0 || req.offset < w.off) continue;
    const std::uint64_t skip = req.offset - w.off;
    if (skip < w.len && req.bytes <= w.len - skip) {
      std::memcpy(req.dst, w.buf.data() + skip,
                  static_cast<std::size_t>(req.bytes));
      return true;
    }
  }
  return false;
}

void coalescing_backend::fill_window(lane& ln, const io_request& req) {
  const std::uint64_t bb = cfg_.block_bytes;
  const std::uint64_t start = req.offset / bb * bb;
  const std::uint64_t end = req.offset + req.bytes;
  // Extend to a readahead window of `batch` blocks — the semi-sorted visit
  // order makes the next requests land just past this one — capped at the
  // file size but never short of the request itself (an out-of-range
  // request falls through to the split path for the canonical error).
  std::uint64_t tail =
      std::max(start + std::uint64_t{cfg_.batch} * bb, end);
  if (tail > file_->size()) tail = std::max<std::uint64_t>(file_->size(), end);
  if (cache_ != nullptr) {
    // Dedup against the block cache: speculative blocks already resident
    // there are cheap re-reads, so stop the window short of them.
    std::uint64_t last = (tail - 1) / bb;
    const std::uint64_t need = (end - 1) / bb;
    while (last > need && cache_->contains(last)) {
      tail = last * bb;
      --last;
    }
  }

  window& w = ln.win[req.stream == 0 ? 0 : 1];
  const std::uint64_t len = tail - start;
  w.len = 0;  // invalid while (re)filling
  if (w.buf.size() < len) w.buf.resize(static_cast<std::size_t>(len));
  merged_io refill;
  refill.offset = start;
  refill.bytes = len;
  refill.slices.push_back({w.buf.data(), len});
  try {
    issue(refill);
  } catch (const io_error&) {
    // The merged range failed permanently (or was out of range): split to
    // the exact request so only its own bytes decide success, exactly like
    // sync_backend would.
    count_split();
    inflight_guard g(*this);
    file_->read_at(req.offset, req.dst, req.bytes);
    count_batch(req.bytes);
    return;
  }
  w.off = start;
  w.len = len;
  std::memcpy(req.dst, w.buf.data() + (req.offset - start),
              static_cast<std::size_t>(req.bytes));
}

void coalescing_backend::read(const io_request& req) {
  count_requests(1);
  if (req.bytes == 0) return;
  lane& ln = my_lane();
  if (serve_from_window(ln, req)) {
    count_coalesced(1);
    return;
  }
  fill_window(ln, req);
}

void coalescing_backend::enqueue(const io_request& req) {
  count_requests(1);
  if (req.bytes == 0) return;
  lane& ln = my_lane();
  ln.staged.push_back(req);
  if (ln.staged.size() >= cfg_.batch) flush_lane(ln);
}

void coalescing_backend::flush() { flush_lane(my_lane()); }

void coalescing_backend::flush_lane(lane& ln) {
  if (ln.staged.empty()) return;
  std::vector<io_request> staged;
  staged.swap(ln.staged);

  // Serve what the readahead windows already hold, then sort the rest by
  // file offset and merge exactly-adjacent runs into single preadv batches.
  // (Overlapping duplicates are always window-covered after their first
  // read, so runs partition disjoint ranges by construction.)
  std::vector<io_request> pending;
  pending.reserve(staged.size());
  for (const io_request& r : staged) {
    if (serve_from_window(ln, r)) {
      count_coalesced(1);
    } else {
      pending.push_back(r);
    }
  }
  if (pending.empty()) return;
  std::stable_sort(pending.begin(), pending.end(),
                   [](const io_request& a, const io_request& b) {
                     return a.offset < b.offset;
                   });

  std::vector<std::pair<std::size_t, std::size_t>> runs;  // {first, count}
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (!runs.empty()) {
      const io_request& prev = pending[i - 1];
      if (prev.offset + prev.bytes == pending[i].offset) {
        ++runs.back().second;
        continue;
      }
    }
    runs.push_back({i, 1});
  }

  // Lone requests go through the readahead window (so a weighted
  // traversal's target/weight streams still prefetch); true runs become one
  // preadv each.
  std::vector<merged_io> batch;
  for (const auto& [first, count] : runs) {
    if (count == 1) {
      fill_window(ln, pending[first]);
      continue;
    }
    merged_io io;
    io.offset = pending[first].offset;
    for (std::size_t i = first; i < first + count; ++i) {
      io.slices.push_back({pending[i].dst, pending[i].bytes});
      io.bytes += pending[i].bytes;
    }
    batch.push_back(std::move(io));
  }
  if (!batch.empty()) issue_batch(batch);
}

void coalescing_backend::issue(const merged_io& io) {
  inflight_guard g(*this);
  bool split = false;
  try {
    split = file_->readv_at(io.offset, io.slices.data(), io.slices.size());
  } catch (const io_error&) {
    // The batch split and a slice still failed for good: the split itself
    // happened, so record it before the abort propagates.
    count_split();
    throw;
  }
  if (split) {
    count_split();
    // The batch degraded to one read per slice; account for each.
    for (const io_slice& s : io.slices) count_batch(s.bytes);
    return;
  }
  if (io.slices.size() > 1) count_coalesced(io.slices.size() - 1);
  count_batch(io.bytes);
}

void coalescing_backend::issue_batch(std::vector<merged_io>& batch) {
  for (const merged_io& io : batch) issue(io);
}

}  // namespace detail

std::unique_ptr<io_backend> make_io_backend(edge_file& file,
                                            const io_backend_config& cfg,
                                            block_cache* cache) {
  cfg.validate();
  switch (cfg.kind) {
    case io_backend_kind::sync:
      return std::make_unique<detail::sync_backend>(file);
    case io_backend_kind::coalescing:
      return std::make_unique<detail::coalescing_backend>(file, cfg, cache);
    case io_backend_kind::uring:
#if defined(ASYNCGT_WITH_URING)
      return detail::make_uring_backend(file, cfg, cache);
#else
      throw std::runtime_error(
          "io_backend 'uring' is not compiled into this build");
#endif
  }
  throw std::invalid_argument("make_io_backend: unknown backend kind");
}

}  // namespace asyncgt::sem
