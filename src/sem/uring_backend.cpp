// Optional io_uring submission path (-DASYNCGT_WITH_URING).
//
// Reuses the coalescing scheduler wholesale — staging, window readahead,
// merging, counters — and overrides only the issue layer: merged ranges
// become IORING_OP_READV submissions on a per-thread ring with a bounded
// in-flight window (the ring depth). No liburing: the rings are set up with
// raw io_uring_setup/io_uring_enter syscalls against <linux/io_uring.h>.
//
// Fallback ladder, most specific first:
//   - fault injector attached      -> synchronous edge_file path for every
//                                     op (plans are drawn per logical op in
//                                     deterministic order; a ring would
//                                     bypass them and break the identity
//                                     suite's fault schedules)
//   - ring setup refused (EPERM /  -> synchronous path on that thread
//     ENOSYS: sandbox, old kernel)
//   - a CQE completes with an      -> that merged range is re-issued
//     error or short read             synchronously, gaining edge_file's
//                                     retry/backoff and split-on-failure
// so the backend is always correct, merely faster when the ring works.
#if defined(ASYNCGT_WITH_URING)

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "sem/io_backend_detail.hpp"
#include "util/timer.hpp"

namespace asyncgt::sem::detail {

namespace {

constexpr auto relaxed = std::memory_order_relaxed;

int sys_io_uring_setup(unsigned entries, io_uring_params* p) noexcept {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) noexcept {
  return static_cast<int>(
      ::syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags,
                nullptr, std::size_t{0}));
}

/// One ring, owned and driven by exactly one thread (single-issuer, so the
/// SQ tail and CQ head need no synchronisation beyond the kernel fences).
struct uring {
  int fd = -1;
  unsigned depth = 0;
  void* sq_ring = MAP_FAILED;
  std::size_t sq_ring_sz = 0;
  void* cq_ring = MAP_FAILED;  // == sq_ring under IORING_FEAT_SINGLE_MMAP
  std::size_t cq_ring_sz = 0;
  io_uring_sqe* sqes = nullptr;
  std::size_t sqes_sz = 0;

  std::atomic<unsigned>* sq_head = nullptr;
  std::atomic<unsigned>* sq_tail = nullptr;
  unsigned sq_mask = 0;
  unsigned* sq_array = nullptr;
  std::atomic<unsigned>* cq_head = nullptr;
  std::atomic<unsigned>* cq_tail = nullptr;
  unsigned cq_mask = 0;
  io_uring_cqe* cqes = nullptr;

  bool tried = false;  // setup attempted (failure is remembered, not retried)
  bool ok = false;

  bool init(unsigned entries) noexcept {
    tried = true;
    io_uring_params p{};
    fd = sys_io_uring_setup(entries, &p);
    if (fd < 0) return false;
    depth = p.sq_entries;

    sq_ring_sz = p.sq_off.array + p.sq_entries * sizeof(unsigned);
    cq_ring_sz = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
    const bool single = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single) {
      sq_ring_sz = cq_ring_sz = std::max(sq_ring_sz, cq_ring_sz);
    }
    sq_ring = ::mmap(nullptr, sq_ring_sz, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQ_RING);
    if (sq_ring == MAP_FAILED) {
      destroy();
      return false;
    }
    if (single) {
      cq_ring = sq_ring;
    } else {
      cq_ring = ::mmap(nullptr, cq_ring_sz, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_CQ_RING);
      if (cq_ring == MAP_FAILED) {
        destroy();
        return false;
      }
    }
    sqes_sz = p.sq_entries * sizeof(io_uring_sqe);
    void* m = ::mmap(nullptr, sqes_sz, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQES);
    if (m == MAP_FAILED) {
      destroy();
      return false;
    }
    sqes = static_cast<io_uring_sqe*>(m);

    auto* sqb = static_cast<char*>(sq_ring);
    sq_head = reinterpret_cast<std::atomic<unsigned>*>(sqb + p.sq_off.head);
    sq_tail = reinterpret_cast<std::atomic<unsigned>*>(sqb + p.sq_off.tail);
    sq_mask = *reinterpret_cast<unsigned*>(sqb + p.sq_off.ring_mask);
    sq_array = reinterpret_cast<unsigned*>(sqb + p.sq_off.array);
    auto* cqb = static_cast<char*>(cq_ring);
    cq_head = reinterpret_cast<std::atomic<unsigned>*>(cqb + p.cq_off.head);
    cq_tail = reinterpret_cast<std::atomic<unsigned>*>(cqb + p.cq_off.tail);
    cq_mask = *reinterpret_cast<unsigned*>(cqb + p.cq_off.ring_mask);
    cqes = reinterpret_cast<io_uring_cqe*>(cqb + p.cq_off.cqes);
    ok = true;
    return true;
  }

  void destroy() noexcept {
    if (sqes != nullptr) ::munmap(sqes, sqes_sz);
    if (cq_ring != MAP_FAILED && cq_ring != sq_ring) {
      ::munmap(cq_ring, cq_ring_sz);
    }
    if (sq_ring != MAP_FAILED) ::munmap(sq_ring, sq_ring_sz);
    if (fd >= 0) ::close(fd);
    sqes = nullptr;
    sq_ring = MAP_FAILED;
    cq_ring = MAP_FAILED;
    fd = -1;
    ok = false;
  }
};

}  // namespace

bool uring_runtime_available() noexcept {
  static const bool available = [] {
    io_uring_params p{};
    const int fd = sys_io_uring_setup(1, &p);
    if (fd < 0) return false;
    ::close(fd);
    return true;
  }();
  return available;
}

namespace {

class uring_backend final : public coalescing_backend {
 public:
  uring_backend(edge_file& file, const io_backend_config& cfg,
                block_cache* cache)
      : coalescing_backend(file, cfg, cache) {}

  ~uring_backend() override {
    for (auto& slot : rings_) {
      ring_chunk* c = slot.load(relaxed);
      if (c != nullptr) {
        for (uring& r : c->rings) {
          if (r.ok) r.destroy();
        }
        delete c;
      }
    }
  }

  const char* name() const noexcept override { return "uring"; }
  io_backend_kind kind() const noexcept override {
    return io_backend_kind::uring;
  }

 protected:
  // Both overrides fall back to the *base* issue() explicitly — never back
  // through the virtual — so a refused ring cannot recurse.
  void issue(const merged_io& io) override {
    uring* r = usable_ring();
    if (r == nullptr) {
      coalescing_backend::issue(io);
      return;
    }
    std::vector<merged_io> one;
    one.push_back(io);
    submit_all(*r, one);
  }

  void issue_batch(std::vector<merged_io>& batch) override {
    uring* r = usable_ring();
    if (r == nullptr) {
      for (const merged_io& io : batch) coalescing_backend::issue(io);
      return;
    }
    submit_all(*r, batch);
  }

 private:
  struct ring_chunk {
    uring rings[64];
  };

  /// Lazily sets up this thread's ring; nullptr when the host refuses
  /// io_uring (the failure is remembered per thread, never re-probed).
  uring* my_ring();

  /// The ring to submit on, or nullptr when the synchronous path must be
  /// used: injected faults are drawn once per logical op in deterministic
  /// order, and only edge_file's path does that.
  uring* usable_ring() {
    return file_->injector() == nullptr ? my_ring() : nullptr;
  }

  /// Submits every merged range with at most ring-depth ops in flight.
  /// Ranges whose CQE reports an error or short read are re-issued through
  /// the synchronous path afterwards; on a ring-level failure the ring is
  /// retired and everything unfinished falls back.
  void submit_all(uring& r, std::vector<merged_io>& batch);

  static constexpr std::size_t kChunkSize = 64;
  static constexpr std::size_t kChunks = 256;
  std::array<std::atomic<ring_chunk*>, kChunks> rings_{};
  std::mutex overflow_mu_;
  std::unordered_map<std::uint32_t, std::unique_ptr<uring>> overflow_;

  static std::uint32_t thread_index() noexcept {
    static std::atomic<std::uint32_t> next{0};
    thread_local const std::uint32_t idx = next.fetch_add(1, relaxed);
    return idx;
  }
};

uring* uring_backend::my_ring() {
  const unsigned entries =
      std::max(2u, std::min(cfg_.batch, 64u));  // setup rounds up to pow2
  const std::uint32_t idx = thread_index();
  uring* r;
  if (idx < kChunks * kChunkSize) {
    auto& slot = rings_[idx / kChunkSize];
    ring_chunk* c = slot.load(std::memory_order_acquire);
    if (c == nullptr) {
      auto* fresh = new ring_chunk();
      if (slot.compare_exchange_strong(c, fresh, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        c = fresh;
      } else {
        delete fresh;
      }
    }
    r = &c->rings[idx % kChunkSize];
  } else {
    std::lock_guard lk(overflow_mu_);
    auto& slot = overflow_[idx];
    if (slot == nullptr) slot = std::make_unique<uring>();
    r = slot.get();
  }
  if (!r->tried) r->init(entries);
  return r->ok ? r : nullptr;
}

void uring_backend::submit_all(uring& r, std::vector<merged_io>& batch) {
  const std::size_t n = batch.size();
  std::vector<std::vector<struct iovec>> iovs(n);
  std::vector<char> failed(n, 0);
  std::vector<char> done(n, 0);
  std::size_t next = 0;
  std::size_t inflight = 0;
  std::size_t completed = 0;
  unsigned unsubmitted = 0;
  unsigned stalls = 0;
  bool ring_dead = false;
  wall_timer t;

  while (completed < n && !ring_dead) {
    // Top up the bounded in-flight window.
    while (next < n && inflight < r.depth) {
      const merged_io& io = batch[next];
      auto& iov = iovs[next];
      iov.reserve(io.slices.size());
      for (const io_slice& s : io.slices) {
        iov.push_back({s.dst, static_cast<std::size_t>(s.bytes)});
      }
      const unsigned tail = r.sq_tail->load(relaxed);
      const unsigned slot = tail & r.sq_mask;
      io_uring_sqe* sqe = &r.sqes[slot];
      std::memset(sqe, 0, sizeof(*sqe));
      sqe->opcode = IORING_OP_READV;
      sqe->fd = file_->fd();
      sqe->off = io.offset;
      sqe->addr = reinterpret_cast<std::uint64_t>(iov.data());
      sqe->len = static_cast<unsigned>(iov.size());
      sqe->user_data = next;
      r.sq_array[slot] = slot;
      r.sq_tail->store(tail + 1, std::memory_order_release);
      ++unsubmitted;
      ++next;
      ++inflight;
      inflight_begin_raw();
    }

    const int rc = sys_io_uring_enter(r.fd, unsubmitted, 1,
                                      IORING_ENTER_GETEVENTS);
    if (rc < 0) {
      const int err = errno;
      if ((err == EINTR || err == EAGAIN || err == EBUSY) &&
          ++stalls < 1024) {
        continue;
      }
      ring_dead = true;
      break;
    }
    stalls = 0;
    unsubmitted = 0;

    unsigned head = r.cq_head->load(relaxed);
    const unsigned cq_tail = r.cq_tail->load(std::memory_order_acquire);
    while (head != cq_tail) {
      const io_uring_cqe& cqe = r.cqes[head & r.cq_mask];
      const std::size_t i = static_cast<std::size_t>(cqe.user_data);
      if (i < n && done[i] == 0) {
        done[i] = 1;
        if (cqe.res < 0 ||
            static_cast<std::uint64_t>(cqe.res) != batch[i].bytes) {
          failed[i] = 1;  // error or short read: retried synchronously below
        } else {
          if (batch[i].slices.size() > 1) {
            count_coalesced(batch[i].slices.size() - 1);
          }
          count_batch(batch[i].bytes);
        }
        ++completed;
        if (inflight > 0) --inflight;
        inflight_end_raw();
      }
      ++head;
    }
    r.cq_head->store(head, std::memory_order_release);
  }

  if (ring_dead) {
    // Retire the ring on this thread (close cancels or drains in-flight
    // ops) and re-issue everything that never completed synchronously.
    while (inflight > 0) {
      --inflight;
      inflight_end_raw();
    }
    r.destroy();
    for (std::size_t i = 0; i < n; ++i) {
      if (done[i] == 0) failed[i] = 1;
    }
  }

  // The recorder normally samples inside edge_file; ring completions bypass
  // it, so account the successful ops here (latency amortised per op).
  if (auto* rec = file_->recorder()) {
    std::uint64_t ok_ops = 0;
    for (std::size_t i = 0; i < n; ++i) ok_ops += failed[i] == 0 ? 1 : 0;
    if (ok_ops > 0) {
      const double us = t.elapsed_us() / static_cast<double>(ok_ops);
      for (std::size_t i = 0; i < n; ++i) {
        if (failed[i] == 0) rec->record(batch[i].bytes, us);
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (failed[i] != 0) coalescing_backend::issue(batch[i]);
  }
}

}  // namespace

std::unique_ptr<io_backend> make_uring_backend(edge_file& file,
                                               const io_backend_config& cfg,
                                               block_cache* cache) {
  if (!uring_runtime_available()) {
    throw std::runtime_error(
        "io_backend 'uring': io_uring_setup is unavailable on this host "
        "(blocked by sandbox or kernel too old)");
  }
  return std::make_unique<uring_backend>(file, cfg, cache);
}

}  // namespace asyncgt::sem::detail

#endif  // ASYNCGT_WITH_URING
