// External-memory sorter: sort a record stream larger than RAM.
//
// This is the substrate the paper's semi-external pipeline presupposes but
// never spells out: building the on-disk CSR for a 2^30-vertex graph on a
// 16 GB machine requires sorting ~2^34 edge records without holding them in
// memory. Classic two-phase external sort (see Vitter's EM survey, the
// paper's [21]): buffer records up to a memory budget, sort and spill each
// buffer as a sorted run file, then k-way merge all runs with a tournament
// over the run heads.
//
// Records must be trivially copyable (they are written raw to the run
// files). The sorter is deliberately single-purpose: add() until done, then
// merge() exactly once, streaming results to a consumer in sorted order.
#pragma once

#include <algorithm>
#include <array>
#include <functional>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace asyncgt::sem {

struct ext_sorter_stats {
  std::uint64_t records = 0;
  std::uint64_t runs = 0;       // spilled run files (0 = fit in memory)
  std::uint64_t spilled_bytes = 0;
};

template <typename Record, typename Less = std::less<Record>>
class ext_sorter {
  static_assert(std::is_trivially_copyable_v<Record>,
                "ext_sorter records are written raw to run files");

 public:
  /// `memory_budget_bytes` caps the in-memory buffer; `scratch_dir` holds
  /// the run files (removed on destruction).
  ext_sorter(std::uint64_t memory_budget_bytes,
             std::filesystem::path scratch_dir, Less less = Less{})
      : capacity_(std::max<std::uint64_t>(memory_budget_bytes / sizeof(Record),
                                          1)),
        scratch_(std::move(scratch_dir)),
        less_(std::move(less)) {
    std::filesystem::create_directories(scratch_);
    buffer_.reserve(capacity_);
  }

  ~ext_sorter() {
    close_runs();
    for (const auto& path : run_paths_) {
      std::error_code ec;
      std::filesystem::remove(path, ec);
    }
  }

  ext_sorter(const ext_sorter&) = delete;
  ext_sorter& operator=(const ext_sorter&) = delete;

  void add(const Record& r) {
    if (merged_) throw std::logic_error("ext_sorter: add after merge");
    buffer_.push_back(r);
    ++stats_.records;
    if (buffer_.size() >= capacity_) spill();
  }

  /// Streams every record, in sorted order, to consume(const Record&).
  /// Callable once.
  template <typename Consumer>
  void merge(Consumer&& consume) {
    if (merged_) throw std::logic_error("ext_sorter: merge called twice");
    merged_ = true;
    std::sort(buffer_.begin(), buffer_.end(), less_);

    if (run_paths_.empty()) {  // everything fit in memory
      for (const Record& r : buffer_) consume(r);
      return;
    }

    // K-way merge: the in-memory buffer acts as run K.
    std::vector<run_reader> readers;
    readers.reserve(run_paths_.size());
    for (const auto& path : run_paths_) readers.emplace_back(path);

    struct head {
      Record record;
      std::size_t source;  // readers.size() = the in-memory buffer
    };
    const auto head_greater = [&](const head& a, const head& b) {
      return less_(b.record, a.record);
    };
    std::priority_queue<head, std::vector<head>, decltype(head_greater)> pq(
        head_greater);

    for (std::size_t i = 0; i < readers.size(); ++i) {
      Record r;
      if (readers[i].next(r)) pq.push({r, i});
    }
    std::size_t buffer_pos = 0;
    if (buffer_pos < buffer_.size()) {
      pq.push({buffer_[buffer_pos++], readers.size()});
    }

    while (!pq.empty()) {
      head top = pq.top();
      pq.pop();
      consume(top.record);
      if (top.source == readers.size()) {
        if (buffer_pos < buffer_.size()) {
          pq.push({buffer_[buffer_pos++], readers.size()});
        }
      } else {
        Record r;
        if (readers[top.source].next(r)) pq.push({r, top.source});
      }
    }
  }

  const ext_sorter_stats& stats() const noexcept { return stats_; }

 private:
  struct file_closer {
    void operator()(std::FILE* f) const noexcept {
      if (f != nullptr) std::fclose(f);
    }
  };
  using file_ptr = std::unique_ptr<std::FILE, file_closer>;

  /// Buffered sequential reader over one spilled run.
  class run_reader {
   public:
    explicit run_reader(const std::filesystem::path& path)
        : file_(std::fopen(path.string().c_str(), "rb")) {
      if (!file_) {
        throw std::runtime_error("ext_sorter: cannot reopen run file " +
                                 path.string());
      }
    }

    bool next(Record& out) {
      if (pos_ == filled_) {
        filled_ = std::fread(chunk_.data(), sizeof(Record), chunk_.size(),
                             file_.get());
        pos_ = 0;
        if (filled_ == 0) return false;
      }
      out = chunk_[pos_++];
      return true;
    }

   private:
    file_ptr file_;
    std::array<Record, 1024> chunk_{};
    std::size_t filled_ = 0;
    std::size_t pos_ = 0;
  };

  void spill() {
    std::sort(buffer_.begin(), buffer_.end(), less_);
    const auto path =
        scratch_ / ("run_" + std::to_string(run_paths_.size()) + ".bin");
    file_ptr f(std::fopen(path.string().c_str(), "wb"));
    if (!f) {
      throw std::runtime_error("ext_sorter: cannot create run file " +
                               path.string());
    }
    const std::size_t written =
        std::fwrite(buffer_.data(), sizeof(Record), buffer_.size(), f.get());
    if (written != buffer_.size()) {
      throw std::runtime_error("ext_sorter: short write to run file");
    }
    stats_.spilled_bytes += written * sizeof(Record);
    ++stats_.runs;
    run_paths_.push_back(path);
    buffer_.clear();
  }

  void close_runs() noexcept {}

  const std::uint64_t capacity_;
  std::filesystem::path scratch_;
  Less less_;
  std::vector<Record> buffer_;
  std::vector<std::filesystem::path> run_paths_;
  ext_sorter_stats stats_;
  bool merged_ = false;
};

}  // namespace asyncgt::sem
