// LRU block cache — the stand-in for the OS page cache over the graph file.
//
// The paper's SEM machine had 16 GB of RAM under graphs of 9-136 GB, so a
// significant fraction of adjacency reads were served from the page cache
// rather than flash; the semi-sorted visitor ordering (§IV-C, "increases
// access locality to the storage devices") exists precisely to concentrate
// accesses so consecutive adjacency lists share 4 KiB blocks. This cache
// makes both effects measurable: sem_csr charges the ssd_model only for
// blocks that miss here.
//
// Implementation: classic hash-map + intrusive doubly-linked LRU list over
// block indices, guarded by one mutex. The cache stores presence only (the
// real bytes always come from the file — the host filesystem is fast; only
// the simulated device time matters), so capacity costs ~48 bytes per
// tracked block regardless of block size.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

namespace asyncgt::sem {

struct cache_counters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;  // misses that displaced a resident block

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class block_cache {
 public:
  /// `capacity_blocks` = number of device blocks the "page cache" can hold.
  explicit block_cache(std::uint64_t capacity_blocks);

  block_cache(const block_cache&) = delete;
  block_cache& operator=(const block_cache&) = delete;

  /// Touches `block`: returns true on hit (and refreshes recency); on miss,
  /// inserts it, evicting the least-recently-used block if full.
  bool access(std::uint64_t block);

  /// Non-mutating residency probe: true iff `block` is currently tracked.
  /// Does not refresh recency and does not count as a hit or miss — used by
  /// the coalescing io_backend to trim speculative readahead at blocks the
  /// simulated page cache would serve cheaply anyway.
  bool contains(std::uint64_t block) const;

  std::uint64_t capacity() const noexcept { return capacity_; }
  std::uint64_t size() const;

  /// Resident footprint this cache models when full: the page-cache bytes
  /// the simulated device blocks would occupy (capacity × block_bytes).
  /// Callers fold this into traversal_options::memory_estimate_bytes for
  /// the engine's memory_budget_bytes admission guardrail — the cache is
  /// shared, so charge it once per engine, not once per job.
  std::uint64_t resident_bytes(std::uint64_t block_bytes = 4096) const noexcept {
    return capacity_ * block_bytes;
  }
  cache_counters counters() const;
  void reset_counters();
  void clear();

 private:
  const std::uint64_t capacity_;
  mutable std::mutex mu_;
  std::list<std::uint64_t> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> map_;
  cache_counters counters_;
};

}  // namespace asyncgt::sem
