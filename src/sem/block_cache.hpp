// Policy-pluggable block cache — the stand-in for the OS page cache over
// the graph file.
//
// The paper's SEM machine had 16 GB of RAM under graphs of 9-136 GB, so a
// significant fraction of adjacency reads were served from the page cache
// rather than flash; the semi-sorted visitor ordering (§IV-C, "increases
// access locality to the storage devices") exists precisely to concentrate
// accesses so consecutive adjacency lists share 4 KiB blocks. This cache
// makes both effects measurable: sem_csr charges the ssd_model only for
// blocks that miss here.
//
// Implementation: hash-map + intrusive doubly-linked recency list guarded
// by one mutex; *which* block to admit or evict is delegated to a
// cache_policy (cache_policy.hpp) — lru_policy by default, byte-identical
// to the pre-seam behavior, or the pressure-weighted policy that resists
// evicting blocks with queued visitors. The cache stores presence only (the
// real bytes always come from the file — the host filesystem is fast; only
// the simulated device time matters), so capacity costs ~48 bytes per
// tracked block regardless of block size.
//
// The cache is also where per-block heat is recorded when a block_heat is
// attached (the probe that decides the charge is the probe that is
// recorded), and where the prefetch lane installs readahead blocks via
// install() — outside the hit/miss ledger, with wasted installs counted
// when they are evicted un-hit.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "sem/block_heat.hpp"
#include "sem/cache_policy.hpp"

namespace asyncgt::sem {

struct cache_counters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;  // misses/installs that displaced a block
  /// Candidates the policy refused to evict (pressure-weighted scan skips)
  /// plus misses the policy declined to admit. 0 under pure LRU.
  std::uint64_t policy_rejects = 0;
  std::uint64_t prefetch_installs = 0;  // blocks installed by readahead
  /// Prefetched blocks evicted before any demand hit — readahead that paid
  /// an install (and possibly an eviction) for nothing.
  std::uint64_t prefetch_wasted = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class block_cache {
 public:
  /// `capacity_blocks` = number of device blocks the "page cache" can hold.
  /// `policy` selects admission/eviction behavior; null means LRU (the
  /// pre-seam default, byte-identical eviction order).
  explicit block_cache(std::uint64_t capacity_blocks,
                       std::unique_ptr<cache_policy> policy = nullptr);

  block_cache(const block_cache&) = delete;
  block_cache& operator=(const block_cache&) = delete;

  /// Touches `block`: returns true on hit (and refreshes recency); on miss,
  /// inserts it (policy admitting), evicting the policy's victim if full.
  bool access(std::uint64_t block);

  /// Non-mutating residency probe: true iff `block` is currently tracked.
  /// Does not refresh recency and does not count as a hit or miss — used by
  /// the coalescing io_backend to trim speculative readahead at blocks the
  /// simulated page cache would serve cheaply anyway, and by the hot-block
  /// advisor's residency classification.
  bool contains(std::uint64_t block) const;

  /// Prefetch insertion: makes `block` resident WITHOUT counting a hit or
  /// miss or recording heat (readahead is not a demand access). A resident
  /// block is left untouched (recency unrefreshed); a new block is inserted
  /// most-recent, evicting the policy's victim if full. The entry stays
  /// marked prefetched until its first demand hit; evicting it un-hit
  /// counts as prefetch_wasted. Returns true if the block was newly
  /// installed.
  bool install(std::uint64_t block);

  /// Attaches a block-heat recorder (borrowed, nullable): every demand
  /// access then records the block and whether it missed — the same probe
  /// that decides the device charge. sem_csr::set_block_heat forwards here
  /// when a cache is attached.
  void set_block_heat(block_heat* heat) noexcept;

  std::uint64_t capacity() const noexcept { return capacity_; }
  std::uint64_t size() const;

  /// Name of the installed admission/eviction policy ("lru", "pressure").
  const char* policy_name() const noexcept { return policy_->name(); }

  /// Resident footprint this cache models when full: the page-cache bytes
  /// the simulated device blocks would occupy (capacity × block_bytes).
  /// Callers fold this into traversal_options::memory_estimate_bytes for
  /// the engine's memory_budget_bytes admission guardrail — the cache is
  /// shared, so charge it once per engine, not once per job.
  std::uint64_t resident_bytes(std::uint64_t block_bytes = 4096) const noexcept {
    return capacity_ * block_bytes;
  }
  cache_counters counters() const;
  void reset_counters();
  void clear();

 private:
  /// Evicts the policy's victim from a full cache (mutex held).
  void evict_one();

  const std::uint64_t capacity_;
  std::unique_ptr<cache_policy> policy_;
  mutable std::mutex mu_;
  cache_recency_list lru_;  // front = most recent
  std::unordered_map<std::uint64_t, cache_recency_list::iterator> map_;
  block_heat* heat_ = nullptr;
  cache_counters counters_;
};

}  // namespace asyncgt::sem
