// Positional (pread) file access for semi-external storage.
//
// The paper's SEM implementation uses "explicit POSIX standard I/O access";
// this wrapper is the thread-safe primitive under sem_csr: pread has no file
// cursor, so hundreds of oversubscribed threads can read adjacency lists
// from one descriptor concurrently without locking.
//
// Failure model (docs/robustness.md): every read is bounds-checked against
// the file size up front, transient errnos (EIO/EAGAIN/...) are retried
// under a configurable bounded-backoff policy, and permanent failures
// surface as io_error with full context (path, offset, bytes, errno,
// retries burned). An optional fault_injector manufactures those failures
// deterministically for tests and `--inject=` bench runs.
#pragma once

#include <cstdint>
#include <string>

#include "sem/io_error.hpp"
#include "telemetry/io_recorder.hpp"

namespace asyncgt::sem {

class fault_injector;

/// One destination of a batched (vectored) read: `bytes` land in `dst`.
/// Slices of a readv_at batch are contiguous in the file by construction.
struct io_slice {
  void* dst = nullptr;
  std::uint64_t bytes = 0;
};

class edge_file {
 public:
  edge_file() = default;
  /// Opens `path` read-only. Throws std::runtime_error on failure.
  explicit edge_file(const std::string& path);
  ~edge_file();

  edge_file(const edge_file&) = delete;
  edge_file& operator=(const edge_file&) = delete;
  edge_file(edge_file&& other) noexcept;
  edge_file& operator=(edge_file&& other) noexcept;

  bool is_open() const noexcept { return fd_ >= 0; }
  std::uint64_t size() const noexcept { return size_; }
  const std::string& path() const noexcept { return path_; }

  /// Raw descriptor for io backends that submit their own reads (io_uring).
  /// Borrowed: remains owned by this edge_file; -1 when not open.
  int fd() const noexcept { return fd_; }

  /// Reads exactly `bytes` at `offset` into `dst` (loops over short reads,
  /// retries transient errnos per the retry policy). Throws io_error when
  /// the request exceeds the file size, on a fatal errno, or when the
  /// retry budget runs out.
  void read_at(std::uint64_t offset, void* dst, std::uint64_t bytes) const;

  /// Batched read: fills `n` slices with consecutive bytes starting at
  /// `offset` using one preadv per attempt (one merged range, one fault
  /// plan, one recorder op). If the merged attempt fails permanently —
  /// retry budget exhausted or a fatal errno — the batch is SPLIT: each
  /// slice is re-issued independently through read_at, so a fault localized
  /// to one slice's byte range fails only that slice (the thrown io_error
  /// then carries that slice's offset and length, not the whole batch).
  /// Returns true iff the batch had to be split; throws io_error exactly
  /// when some slice cannot be read.
  bool readv_at(std::uint64_t offset, const io_slice* slices,
                std::size_t n) const;

  /// Attaches a telemetry recorder (borrowed, nullable): every read_at then
  /// reports its byte count and host-side pread latency, plus retry /
  /// gave-up events. With no recorder attached, read_at does not even
  /// sample the clock.
  void set_recorder(telemetry::io_recorder* recorder) noexcept {
    recorder_ = recorder;
  }
  telemetry::io_recorder* recorder() const noexcept { return recorder_; }

  /// Replaces the transient-failure retry policy (validated here). The
  /// default retries 4 times with 50 µs..10 ms jittered backoff.
  void set_retry_policy(const io_retry_policy& policy) {
    policy.validate();
    retry_ = policy;
  }
  const io_retry_policy& retry_policy() const noexcept { return retry_; }

  /// Attaches a fault injector (borrowed, nullable): every read then draws
  /// a fault plan before touching the descriptor. Null disables injection.
  void set_fault_injector(fault_injector* injector) noexcept {
    injector_ = injector;
  }
  fault_injector* injector() const noexcept { return injector_; }

 private:
  void close() noexcept;
  void read_at_raw(std::uint64_t offset, void* dst,
                   std::uint64_t bytes) const;
  void readv_at_raw(std::uint64_t offset, const io_slice* slices,
                    std::size_t n, std::uint64_t total) const;

  int fd_ = -1;
  std::uint64_t size_ = 0;
  std::string path_;
  telemetry::io_recorder* recorder_ = nullptr;
  fault_injector* injector_ = nullptr;
  io_retry_policy retry_;
};

}  // namespace asyncgt::sem
