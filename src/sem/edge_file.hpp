// Positional (pread) file access for semi-external storage.
//
// The paper's SEM implementation uses "explicit POSIX standard I/O access";
// this wrapper is the thread-safe primitive under sem_csr: pread has no file
// cursor, so hundreds of oversubscribed threads can read adjacency lists
// from one descriptor concurrently without locking.
#pragma once

#include <cstdint>
#include <string>

#include "telemetry/io_recorder.hpp"

namespace asyncgt::sem {

class edge_file {
 public:
  edge_file() = default;
  /// Opens `path` read-only. Throws std::runtime_error on failure.
  explicit edge_file(const std::string& path);
  ~edge_file();

  edge_file(const edge_file&) = delete;
  edge_file& operator=(const edge_file&) = delete;
  edge_file(edge_file&& other) noexcept;
  edge_file& operator=(edge_file&& other) noexcept;

  bool is_open() const noexcept { return fd_ >= 0; }
  std::uint64_t size() const noexcept { return size_; }
  const std::string& path() const noexcept { return path_; }

  /// Reads exactly `bytes` at `offset` into `dst` (loops over short reads).
  /// Throws std::runtime_error on EOF-before-done or I/O error.
  void read_at(std::uint64_t offset, void* dst, std::uint64_t bytes) const;

  /// Attaches a telemetry recorder (borrowed, nullable): every read_at then
  /// reports its byte count and host-side pread latency. With no recorder
  /// attached, read_at does not even sample the clock.
  void set_recorder(telemetry::io_recorder* recorder) noexcept {
    recorder_ = recorder;
  }
  telemetry::io_recorder* recorder() const noexcept { return recorder_; }

 private:
  void close() noexcept;
  void read_at_raw(std::uint64_t offset, void* dst,
                   std::uint64_t bytes) const;

  int fd_ = -1;
  std::uint64_t size_ = 0;
  std::string path_;
  telemetry::io_recorder* recorder_ = nullptr;
};

}  // namespace asyncgt::sem
