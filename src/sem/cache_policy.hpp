// Pluggable admission/eviction policy for block_cache.
//
// The seed cache hard-coded hash-map + LRU; CAVE's range-indexed BlockCache
// (SNIPPETS.md) shows the shape a priority-admission cache wants: the
// recency bookkeeping stays in the cache, the *choice* of what to admit and
// what to evict moves behind an interface. block_cache owns one policy and
// calls it under its own mutex, so policies need no locking of their own —
// but they may read external relaxed-atomic signals (the pressure policy
// reads block_pressure).
//
// Policies shipped here:
//   lru_policy      — the behavior-identical default: admit everything,
//                     evict the recency tail. Byte-identical eviction order
//                     to the pre-seam cache (the block_cache unit tests pin
//                     this).
//   pressure_policy — resists evicting blocks with queued work: scans a
//                     bounded window from the recency tail for a
//                     pressure-free victim, else evicts the least-pressured
//                     block in the window. Skipped pressured candidates are
//                     reported back and surface as cache.policy_rejects.
//
// Select by name with make_cache_policy() ("lru" / "pressure") — the string
// the --cache-policy= flag and sem_config carry.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <stdexcept>
#include <string>

#include "sem/block_pressure.hpp"

namespace asyncgt::sem {

/// One resident block in the cache's recency list (front = most recent).
/// `prefetched` marks an entry installed by the readahead lane that has not
/// been demand-hit yet — evicting one counts as prefetch_wasted.
struct cache_entry {
  std::uint64_t block = 0;
  bool prefetched = false;
};

using cache_recency_list = std::list<cache_entry>;

class cache_policy {
 public:
  virtual ~cache_policy() = default;

  /// Reported in bench JSON / console output ("lru", "pressure").
  virtual const char* name() const noexcept = 0;

  /// Admission: should a missing `block` be inserted at all? Returning
  /// false leaves the cache untouched (the access still counts as a miss;
  /// the refusal surfaces as a policy_reject). The default admits all —
  /// LRU semantics.
  virtual bool admit(std::uint64_t block) noexcept {
    (void)block;
    return true;
  }

  /// A resident block was demand-hit (recency already refreshed).
  virtual void on_touch(std::uint64_t block) noexcept { (void)block; }

  /// Eviction: choose the victim from a non-empty recency list (front =
  /// most recent, back = least). Must return a valid iterator into
  /// `recency`. `rejects` is incremented by the number of candidates the
  /// policy refused to sacrifice while choosing (0 for LRU).
  virtual cache_recency_list::iterator pick_victim(
      cache_recency_list& recency, std::uint64_t& rejects) noexcept = 0;
};

/// The default: classic LRU, byte-identical to the pre-seam cache.
class lru_policy final : public cache_policy {
 public:
  const char* name() const noexcept override { return "lru"; }

  cache_recency_list::iterator pick_victim(
      cache_recency_list& recency, std::uint64_t& rejects) noexcept override {
    (void)rejects;
    return std::prev(recency.end());
  }
};

/// Pressure-weighted eviction: a block with queued visitors is about to be
/// read again, so evicting it trades one guaranteed future miss for the
/// hope that the LRU tail stays cold — a bad trade whenever pressure is
/// live. The scan window is bounded so a fully-pressured cache degrades to
/// "evict the least-pressured of the last `scan_limit`" instead of an O(n)
/// walk per miss.
class pressure_policy final : public cache_policy {
 public:
  /// `pressure` is borrowed and may be null (degrades to pure LRU).
  explicit pressure_policy(const block_pressure* pressure,
                           std::size_t scan_limit = 8)
      : pressure_(pressure), scan_limit_(scan_limit == 0 ? 1 : scan_limit) {}

  const char* name() const noexcept override { return "pressure"; }

  cache_recency_list::iterator pick_victim(
      cache_recency_list& recency, std::uint64_t& rejects) noexcept override {
    auto victim = std::prev(recency.end());
    if (pressure_ == nullptr) return victim;
    auto best = victim;
    std::uint32_t best_pending = pressure_->pending(victim->block);
    std::size_t scanned = 1;
    auto it = victim;
    while (best_pending > 0 && scanned < scan_limit_ &&
           it != recency.begin()) {
      --it;
      ++scanned;
      const std::uint32_t p = pressure_->pending(it->block);
      if (p < best_pending) {
        best = it;
        best_pending = p;
      }
    }
    // Everything passed over on the way to the chosen victim was a
    // pressured candidate the policy refused to sacrifice.
    rejects += scanned - 1;
    return best;
  }

 private:
  const block_pressure* pressure_;
  std::size_t scan_limit_;
};

/// Policy factory for the --cache-policy= flag and sem_config. `pressure`
/// is only consulted for the pressure policy (and may be null there, which
/// degrades it to LRU). Throws std::invalid_argument on an unknown name.
inline std::unique_ptr<cache_policy> make_cache_policy(
    const std::string& name, const block_pressure* pressure = nullptr) {
  if (name.empty() || name == "lru") return std::make_unique<lru_policy>();
  if (name == "pressure") return std::make_unique<pressure_policy>(pressure);
  throw std::invalid_argument("unknown cache policy '" + name +
                              "' (expected lru|pressure)");
}

}  // namespace asyncgt::sem
