// Ablation: why *prioritized* visitor queues (paper §III-A/III-B).
//
// The asynchronous label-correcting traversal is correct under any pop
// order, but the number of corrective re-visits depends on how close the
// pop order is to Dijkstra's. This harness runs SSSP under priority / FIFO
// ordering (and LIFO on a deliberately small graph — stack-order correction
// on weighted graphs does multiplicatively more work, which is itself the
// point) and reports total visits (work) and wasted visits (visits that did
// not improve a label). The paper's design choice is justified if priority
// ordering does the least work.
//
//   ./ablation_priority [--scale=13] [--lifo-scale=9] [--threads=1,16]
#include <string>
#include <vector>

#include "baselines/serial_sssp.hpp"
#include "bench_common.hpp"
#include "bench_report.hpp"
#include "core/async_sssp.hpp"
#include "gen/weights.hpp"

using namespace asyncgt;
using namespace asyncgt::bench;

namespace {

struct order_run {
  std::string name;
  double seconds = 0;
  std::uint64_t visits = 0;
  std::uint64_t wasted = 0;
  bool correct = false;
};

order_run run_order(const csr32& g, const sssp_result<vertex32>& ref,
                    queue_order order, std::size_t threads,
                    const char* name) {
  visitor_queue_config cfg;
  cfg.num_threads = threads;
  cfg.order = order;
  order_run out;
  out.name = name;
  sssp_result<vertex32> r;
  out.seconds = time_seconds([&] { r = async_sssp(g, vertex32{0}, cfg); });
  out.visits = r.stats.visits;
  out.wasted = r.stats.visits - r.updates;
  out.correct = (r.dist == ref.dist);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const options opt(argc, argv);
  const auto scale = static_cast<unsigned>(opt.get_int("scale", 13));
  const auto lifo_scale = static_cast<unsigned>(opt.get_int("lifo-scale", 9));
  const auto threads = opt.get_int_list("threads", {1, 16});

  banner("Visitor-queue ordering ablation (priority vs FIFO vs LIFO)",
         "design choice behind paper Algorithms 1-4");

  bench_report rep(opt, "ablation_priority");

  text_table table;
  table.header({"graph", "threads", "order", "time (s)", "visits",
                "wasted visits"});

  bool ok = true;
  for (const std::string preset : {std::string("a"), std::string("b")}) {
    const csr32 g = add_weights(
        rmat_graph<vertex32>(rmat_preset(preset, scale)),
        weight_scheme::uniform, 77);
    const auto ref = dijkstra_sssp(g, vertex32{0});

    for (const auto t : threads) {
      const order_run prio = run_order(g, ref, queue_order::priority,
                                       static_cast<std::size_t>(t),
                                       "priority");
      const order_run fifo = run_order(g, ref, queue_order::fifo,
                                       static_cast<std::size_t>(t), "fifo");
      for (const auto& r : {prio, fifo}) {
        if (!r.correct) ok &= shape_check(false, "ordering correctness");
        table.row({rmat_label(preset, scale), std::to_string(t), r.name,
                   fmt_seconds(r.seconds), fmt_count(r.visits),
                   fmt_count(r.wasted)});
      }
      table.rule();
      ok &= shape_check(
          prio.visits <= fifo.visits,
          rmat_label(preset, scale) + " t=" + std::to_string(t) +
              ": priority ordering does no more label-correction work than "
              "FIFO");
    }
  }

  // LIFO on a small graph: demonstrates how badly unprioritized stack-order
  // correction degrades (this is why the paper's queues are priority queues;
  // at larger scales LIFO work grows multiplicatively, hence the small
  // dedicated instance).
  {
    const csr32 g = add_weights(rmat_graph<vertex32>(rmat_a(lifo_scale)),
                                weight_scheme::uniform, 77);
    const auto ref = dijkstra_sssp(g, vertex32{0});
    const order_run prio =
        run_order(g, ref, queue_order::priority, 1, "priority");
    const order_run lifo = run_order(g, ref, queue_order::lifo, 1, "lifo");
    for (const auto& r : {prio, lifo}) {
      if (!r.correct) ok &= shape_check(false, "LIFO correctness");
      table.row({rmat_label("a", lifo_scale), "1", r.name,
                 fmt_seconds(r.seconds), fmt_count(r.visits),
                 fmt_count(r.wasted)});
    }
    ok &= shape_check(lifo.visits > 2 * prio.visits,
                      "LIFO (stack) ordering wastes multiples of the "
                      "prioritized work even on a small graph");
  }

  std::printf("%s\n", table.render().c_str());
  rep.add_table(table);
  if (rep.json_enabled()) rep.section("result").set("ok", ok);
  rep.finish();
  return ok ? 0 : 1;
}