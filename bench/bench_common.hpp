// Shared plumbing for the experiment harnesses (one binary per paper
// table/figure — see DESIGN.md §4).
//
// All harnesses take --scales=a,b,c / --threads=n,... style options and print
// a fixed-width table plus the machine-independent shape checks for that
// experiment. Default sizes are chosen to finish in seconds on a small VM;
// pass larger --scales to approach the paper's 2^25..2^30 range.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "gen/rmat.hpp"
#include "graph/csr_graph.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace asyncgt::bench {

/// Runs fn() once and returns elapsed wall seconds.
template <typename F>
double time_seconds(F&& fn) {
  wall_timer t;
  fn();
  return t.elapsed_seconds();
}

/// "a" or "b" -> the paper's RMAT presets.
inline rmat_params rmat_preset(const std::string& which, unsigned scale,
                               std::uint64_t seed = 42) {
  if (which == "a") return rmat_a(scale, seed);
  if (which == "b") return rmat_b(scale, seed);
  throw std::invalid_argument("unknown RMAT preset '" + which + "'");
}

inline std::string rmat_label(const std::string& which, unsigned scale) {
  return std::string("RMAT-") + (which == "a" ? "A" : "B") + " 2^" +
         std::to_string(scale);
}

/// Prints a section banner matching the paper artifact the binary recreates.
inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("(reproduces %s; see EXPERIMENTS.md for paper-vs-measured)\n\n",
              paper_ref.c_str());
}

/// One PASS/FAIL shape-check line. Shape checks encode the paper's
/// machine-independent claims (who wins, where the curve bends); they let
/// `for b in bench/*; do $b; done` act as a regression harness for the
/// reproduction itself.
inline bool shape_check(bool ok, const std::string& claim) {
  std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", claim.c_str());
  return ok;
}

}  // namespace asyncgt::bench
