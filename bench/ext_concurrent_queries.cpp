// Concurrent semi-external queries through the persistent traversal
// service (docs/service_api.md) — the scenario the engine exists for.
//
// The ROADMAP north star is a service answering many concurrent
// BFS/SSSP/CC queries over one shared disk-resident graph. This bench
// runs a MIXED workload — J jobs cycling bfs/sssp/cc — and measures the
// effects the service design predicts, plus the job-scoped telemetry the
// observability layer (docs/observability.md) promises:
//
//   1. Shared cache residency. J concurrent jobs read the same .agt file
//      through ONE block_cache and ONE ssd_model: every block one job
//      faults in is a hit for the others, so the aggregate hit rate of the
//      concurrent phase must be at least the single-job baseline (both
//      phases start from a cold, equally-sized cache). The default cache
//      holds the whole file; pass --cache-fraction < 1 to re-add LRU
//      capacity churn and watch the two effects fight.
//   2. Warm pool reuse. All phases run on one asyncgt::engine — the pool
//      spawn counter must not move after warm-up.
//   3. Attribution conservation. Each job's stats() snapshot is a slice of
//      the shared telemetry: summed over the J concurrent jobs, per-job
//      visits must equal the registry's queue.visits delta EXACTLY, and
//      per-job io_bytes the io_recorder's byte delta — nothing lost,
//      nothing double-counted, even with all jobs interleaving on one
//      cache/device/recorder.
//   4. Block heat. The shared sem_csr carries a block_heat; after the
//      concurrent phase its top-K hot-block table must be non-empty (the
//      SEM path actually touched blocks) and is emitted in the report.
//
// Correctness rides along: every concurrent job's labels are compared
// against the serial baseline for its kind (serial_bfs / dijkstra_sssp /
// serial_cc) — label correction must stay exact under job interleaving.
//
// The JSON report (schema v2) carries a "jobs" array (one entry per
// concurrent job: counters, flags, lifecycle latencies), a "job_latency"
// percentile block over the J job latencies, the "block_heat" section,
// and the conservation sums — tools/check_bench_json.py validates the
// shape, tools/compare_bench_json.py diffs two runs.
//
//   ./ext_concurrent_queries [--scale=15] [--jobs=4] [--threads=32]
//                            [--time-scale=4] [--cache-fraction=1.0]
//                            [--device=intel] [--flush-batch=1]
//                            [--json=F] [--trace=F] [--stats-dump=N]
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/serial_bfs.hpp"
#include "baselines/serial_cc.hpp"
#include "baselines/serial_sssp.hpp"
#include "bench_common.hpp"
#include "bench_report.hpp"
#include "core/async_bfs.hpp"
#include "core/async_cc.hpp"
#include "core/async_sssp.hpp"
#include "gen/weights.hpp"
#include "sem/block_cache.hpp"
#include "sem/block_heat.hpp"
#include "sem/device_presets.hpp"
#include "sem/sem_config.hpp"
#include "sem/sem_csr.hpp"
#include "service/engine.hpp"
#include "telemetry/io_recorder.hpp"
#include "util/stats.hpp"

using namespace asyncgt;
using namespace asyncgt::bench;

namespace {

/// The `jobs` highest-degree vertices, one start per concurrent query.
std::vector<vertex32> pick_starts(const csr32& g, std::size_t jobs) {
  std::vector<vertex32> order(g.num_vertices());
  for (vertex32 v = 0; v < g.num_vertices(); ++v) order[v] = v;
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(jobs),
                    order.end(), [&](vertex32 a, vertex32 b) {
                      return g.out_degree(a) > g.out_degree(b);
                    });
  order.resize(jobs);
  return order;
}

json_value cache_section(const sem::block_cache& cache, double elapsed) {
  json_value out = json_value::object();
  out.set("cache", bench::to_json(cache.counters()));
  out.set("elapsed_seconds", elapsed);
  return out;
}

/// Type-erased handle over job<bfs_result>/job<sssp_result>/job<cc_result>
/// so one vector can hold the mixed in-flight workload.
struct running_job {
  std::string kind;
  std::function<bool()> wait_and_check;          // get() + labels vs baseline
  std::function<service::job_stats()> stats;     // handle.stats() snapshot
};

json_value latency_percentiles(std::vector<double> samples) {
  const double mx = samples.empty()
                        ? 0.0
                        : *std::max_element(samples.begin(), samples.end());
  json_value out = json_value::object();
  out.set("p50", percentile(samples, 50.0));
  out.set("p95", percentile(samples, 95.0));
  out.set("p99", percentile(samples, 99.0));
  out.set("max", mx);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const options opt(argc, argv);
  const auto scale = static_cast<unsigned>(opt.get_int("scale", 15));
  const auto jobs = static_cast<std::size_t>(opt.get_int("jobs", 4));
  traversal_options topt = traversal_options::from_flags(opt, true);
  if (!opt.has("threads")) topt.queue.num_threads = 32;
  const double time_scale = opt.get_double("time-scale", 4.0);
  // --cache-fraction flows through the shared parser; this bench's default
  // is a cache big enough to hold the file (the shared-cache effect is the
  // point), and an explicit 0 degrades to the 1-block floor as before.
  const double cache_fraction =
      topt.cache_fraction >= 0.0 ? topt.cache_fraction : 1.0;

  banner("Concurrent mixed SEM queries over one shared graph + cache",
         "service API (docs/service_api.md), job-scoped telemetry "
         "(docs/observability.md)");

  bench_report rep(opt, "ext_concurrent_queries");
  rep.attach(topt.queue);
  // The conservation checks below need the registry even without --json,
  // so wire it unconditionally (attach() is a no-op when nothing was
  // requested on the command line).
  topt.queue.metrics = &rep.metrics();

  // Weighted so the SSSP jobs are non-trivial and comparable to Dijkstra.
  const csr32 g = add_weights(rmat_graph_undirected<vertex32>(rmat_a(scale, 42)),
                              weight_scheme::uniform, 7);
  const auto tmp =
      std::filesystem::temp_directory_path() / "asyncgt_concurrent";
  std::filesystem::create_directories(tmp);
  const std::string path = (tmp / "graph.agt").string();
  write_graph(path, g);

  const auto params = sem::device_preset_by_name(
      opt.get_string("device", "intel"), time_scale);
  sem::ssd_model dev(params);
  // Job-scoped observability around the shared graph: one io_recorder and
  // one block_heat for every job; per-job slices come from metric_scope.
  // The builder also carries the hot-block knobs, so --ordering=hot /
  // --cache-policy=pressure / --prefetch-hot apply to the shared graph.
  telemetry::io_recorder rec;
  sem::sem_config scfg = sem::sem_config::from_options(topt, path);
  scfg.with_device(&dev).with_heat().with_io_recorder(&rec);
  if (cache_fraction > 0.0) {
    scfg.with_cache_fraction(cache_fraction);
  } else {
    scfg.with_cache_blocks(1);
  }
  auto bundle = scfg.open<vertex32>();
  bundle.wire_queue(topt.queue);
  sem::sem_csr32& sg = *bundle.graph;
  sem::block_cache& cache = *bundle.cache;
  sem::block_heat& heat = *bundle.heat;

  const std::vector<vertex32> starts = pick_starts(g, jobs);
  std::vector<bfs_result<vertex32>> expected_bfs;
  std::vector<sssp_result<vertex32>> expected_sssp;
  for (const vertex32 s : starts) {
    expected_bfs.push_back(serial_bfs(g, s));
    expected_sssp.push_back(dijkstra_sssp(g, s));
  }
  const cc_result<vertex32> expected_cc = serial_cc(g);

  // One engine for the whole bench, pre-sized so all J jobs genuinely
  // overlap (each job takes num_threads pool slots; a narrower pool would
  // FIFO-serialize the gangs instead of interleaving them).
  engine eng({.pool_threads = topt.queue.num_threads * jobs, .defaults = topt});

  bool ok = true;
  text_table table;
  table.header({"phase", "jobs", "reads", "cache hit", "evict", "sec"});

  // Submits job j of the mixed workload (kind cycles bfs/sssp/cc) and
  // wraps it behind the type-erased running_job surface.
  const auto submit_mixed = [&](std::size_t j) -> running_job {
    const vertex32 s = starts[j];
    switch (j % 3) {
      case 0: {
        auto h = std::make_shared<job<bfs_result<vertex32>>>(
            eng.submit_bfs(sg, s));
        return {"bfs",
                [h, j, &expected_bfs] {
                  return h->get().level == expected_bfs[j].level;
                },
                [h] { return h->stats(); }};
      }
      case 1: {
        auto h = std::make_shared<job<sssp_result<vertex32>>>(
            eng.submit_sssp(sg, s));
        return {"sssp",
                [h, j, &expected_sssp] {
                  return h->get().dist == expected_sssp[j].dist;
                },
                [h] { return h->stats(); }};
      }
      default: {
        auto h = std::make_shared<job<cc_result<vertex32>>>(eng.submit_cc(sg));
        return {"cc",
                [h, &expected_cc] {
                  return h->get().component == expected_cc.component;
                },
                [h] { return h->stats(); }};
      }
    }
  };

  // ---- Phase 1: single-job baseline, cold cache ----
  cache.clear();
  cache.reset_counters();
  double t_single = 0.0;
  {
    wall_timer t;
    auto r = eng.submit_bfs(sg, starts[0]).get();
    t_single = t.elapsed_seconds();
    ok &= shape_check(r.level == expected_bfs[0].level,
                      "single SEM job matches serial BFS");
  }
  const double hit_single = cache.counters().hit_rate();
  table.row({"single", "1", fmt_count(dev.counters().reads),
             fmt_ratio(hit_single), fmt_count(cache.counters().evictions),
             fmt_seconds(t_single)});
  if (rep.json_enabled()) {
    rep.section("single") = cache_section(cache, t_single);
  }

  // ---- Phase 2: J mixed concurrent jobs, cold cache, shared everything ----
  cache.clear();
  cache.reset_counters();
  heat.reset();
  const std::uint64_t spawned_before = eng.pool().threads_spawned();
  // Bracket the phase in the shared sinks for the conservation checks.
  const std::uint64_t visits_before =
      rep.metrics().get_counter("queue.visits").total();
  const telemetry::io_snapshot io_before = rec.snapshot();

  double t_conc = 0.0;
  std::vector<service::job_stats> job_stats;
  {
    wall_timer t;
    std::vector<running_job> handles;
    handles.reserve(jobs);
    for (std::size_t j = 0; j < jobs; ++j) handles.push_back(submit_mixed(j));
    for (std::size_t j = 0; j < jobs; ++j) {
      ok &= shape_check(handles[j].wait_and_check(),
                        "concurrent SEM " + handles[j].kind + " job " +
                            std::to_string(j) + " matches serial baseline");
    }
    t_conc = t.elapsed_seconds();
    for (auto& h : handles) job_stats.push_back(h.stats());
  }
  const std::uint64_t visits_after =
      rep.metrics().get_counter("queue.visits").total();
  const telemetry::io_snapshot io_after = rec.snapshot();
  const double hit_conc = cache.counters().hit_rate();
  table.row({"concurrent", std::to_string(jobs),
             fmt_count(dev.counters().reads), fmt_ratio(hit_conc),
             fmt_count(cache.counters().evictions), fmt_seconds(t_conc)});
  if (rep.json_enabled()) {
    json_value s = cache_section(cache, t_conc);
    s.set("jobs", static_cast<std::uint64_t>(jobs));
    rep.section("concurrent") = std::move(s);
  }

  // ---- Round 2 of phase 2: the pool must already be fully warm ----
  cache.reset_counters();
  {
    std::vector<running_job> handles;
    for (std::size_t j = 0; j < jobs; ++j) handles.push_back(submit_mixed(j));
    for (auto& h : handles) ok &= shape_check(h.wait_and_check(),
                                              "warm-round job matches");
  }
  const std::uint64_t spawned_after = eng.pool().threads_spawned();

  std::printf("%s\n", table.render().c_str());

  // ---- Checks ----
  // Shared-cache effect: concurrent jobs sharing one block cache see a hit
  // rate at least as good as a single job over the same cold cache.
  ok &= shape_check(hit_conc >= hit_single,
                    "shared-cache hit rate of concurrent jobs >= single-job "
                    "baseline");
  ok &= shape_check(spawned_after == spawned_before &&
                        spawned_before ==
                            static_cast<std::uint64_t>(
                                topt.queue.num_threads * jobs),
                    "warm engine spawned zero threads across all rounds");

  // Attribution conservation: the J per-job slices sum EXACTLY to the
  // shared sinks' deltas across the concurrent phase.
  std::uint64_t sum_visits = 0;
  std::uint64_t sum_io_bytes = 0;
  std::uint64_t sum_io_ops = 0;
  for (const auto& js : job_stats) {
    sum_visits += js.visits;
    sum_io_bytes += js.io_bytes;
    sum_io_ops += js.io_ops;
    ok &= shape_check(js.completed && !js.failed && !js.cancelled,
                      "job " + std::to_string(js.job_id) +
                          " snapshot says completed");
    ok &= shape_check(js.total_seconds >= js.queue_wait_seconds &&
                          js.total_seconds >= js.run_seconds,
                      "job lifecycle latencies are consistent");
  }
  const std::uint64_t visits_delta = visits_after - visits_before;
  const std::uint64_t io_bytes_delta = io_after.bytes - io_before.bytes;
  const std::uint64_t io_ops_delta = io_after.ops - io_before.ops;
  ok &= shape_check(sum_visits == visits_delta,
                    "per-job visit sum == global queue.visits delta (" +
                        std::to_string(sum_visits) + " vs " +
                        std::to_string(visits_delta) + ")");
  ok &= shape_check(sum_io_bytes == io_bytes_delta,
                    "per-job io byte sum == io_recorder delta (" +
                        std::to_string(sum_io_bytes) + " vs " +
                        std::to_string(io_bytes_delta) + ")");
  ok &= shape_check(sum_io_ops == io_ops_delta,
                    "per-job io op sum == io_recorder delta");

  // Block heat: the SEM path must have touched blocks; the hottest-block
  // table is the report's locality lens.
  const auto hot = heat.top_k(10);
  ok &= shape_check(!hot.empty() && hot[0].accesses > 0,
                    "block-heat top-K is non-empty after the SEM phase");
  ok &= shape_check(heat.total_accesses() >= heat.total_misses(),
                    "block-heat misses <= accesses");

  // ---- Report ----
  if (rep.json_enabled()) {
    // Full admission/outcome counters (schema v3 — the conservation law
    // checked by tools/check_bench_json.py), plus this bench's extras.
    json_value& s = rep.section("service");
    s = bench::to_json(eng.counters());
    s.set("pool_threads_spawned", spawned_after);
    s.set("jobs_submitted", eng.jobs_submitted());
    s.set("jobs_completed", eng.jobs_completed());
    s.set("hit_rate_single", hit_single);
    s.set("hit_rate_concurrent", hit_conc);

    std::vector<double> lat_total, lat_wait, lat_run;
    for (const auto& js : job_stats) {
      rep.add_job(bench::to_json(js));
      lat_total.push_back(js.total_seconds);
      lat_wait.push_back(js.queue_wait_seconds);
      lat_run.push_back(js.run_seconds);
    }
    json_value& lat = rep.section("job_latency");
    lat.set("jobs", static_cast<std::uint64_t>(job_stats.size()));
    lat.set("total_seconds", latency_percentiles(lat_total));
    lat.set("queue_wait_seconds", latency_percentiles(lat_wait));
    lat.set("run_seconds", latency_percentiles(lat_run));

    rep.section("block_heat") = bench::to_json(heat, 10);
    rep.section("io") = telemetry::to_json(rec.snapshot());

    json_value& cons = rep.section("conservation");
    cons.set("sum_job_visits", sum_visits);
    cons.set("global_visits_delta", visits_delta);
    cons.set("sum_job_io_bytes", sum_io_bytes);
    cons.set("global_io_bytes_delta", io_bytes_delta);
    cons.set("exact", sum_visits == visits_delta &&
                          sum_io_bytes == io_bytes_delta);
  }
  rep.add_table(table);
  if (rep.json_enabled()) rep.section("result").set("ok", ok);
  rep.finish();

  std::error_code ec;
  std::filesystem::remove_all(tmp, ec);
  return ok ? 0 : 1;
}
