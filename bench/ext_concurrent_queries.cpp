// Concurrent semi-external queries through the persistent traversal
// service (docs/service_api.md) — the scenario the engine exists for.
//
// The ROADMAP north star is a service answering many concurrent
// BFS/SSSP/CC queries over one shared disk-resident graph. This bench
// measures the two effects the service design predicts for that workload:
//
//   1. Shared cache residency. J concurrent jobs read the same .agt file
//      through ONE block_cache and ONE ssd_model: every block one job
//      faults in is a hit for the others, so the aggregate hit rate of the
//      concurrent phase must be at least the single-job baseline (the
//      acceptance criterion; both phases start from a cold, equally-sized
//      cache). The default cache holds the whole file so the check
//      isolates this first-toucher sharing from LRU capacity churn — J
//      distinct frontiers competing for a short cache can erode the
//      margin; pass --cache-fraction < 1 to re-add that pressure and
//      watch the two effects fight.
//   2. Warm pool reuse. Both phases and a repeat round run on one
//      asyncgt::engine — the pool spawn counter must not move after
//      warm-up, no matter how many jobs are submitted.
//
// Correctness rides along: every concurrent job's labels are compared
// against the in-memory serial baseline for its start vertex.
//
//   ./ext_concurrent_queries [--scale=15] [--jobs=4] [--threads=32]
//                            [--time-scale=4] [--cache-fraction=1.0]
//                            [--device=intel] [--flush-batch=1]
#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "baselines/serial_bfs.hpp"
#include "bench_common.hpp"
#include "bench_report.hpp"
#include "core/async_bfs.hpp"
#include "sem/block_cache.hpp"
#include "sem/device_presets.hpp"
#include "sem/sem_csr.hpp"
#include "service/engine.hpp"

using namespace asyncgt;
using namespace asyncgt::bench;

namespace {

/// The `jobs` highest-degree vertices, one start per concurrent query.
std::vector<vertex32> pick_starts(const csr32& g, std::size_t jobs) {
  std::vector<vertex32> order(g.num_vertices());
  for (vertex32 v = 0; v < g.num_vertices(); ++v) order[v] = v;
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(jobs),
                    order.end(), [&](vertex32 a, vertex32 b) {
                      return g.out_degree(a) > g.out_degree(b);
                    });
  order.resize(jobs);
  return order;
}

json_value cache_section(const sem::block_cache& cache, double elapsed) {
  json_value out = json_value::object();
  out.set("cache", bench::to_json(cache.counters()));
  out.set("elapsed_seconds", elapsed);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const options opt(argc, argv);
  const auto scale = static_cast<unsigned>(opt.get_int("scale", 15));
  const auto jobs = static_cast<std::size_t>(opt.get_int("jobs", 4));
  traversal_options topt = traversal_options::from_flags(opt, true);
  if (!opt.has("threads")) topt.queue.num_threads = 32;
  const double time_scale = opt.get_double("time-scale", 4.0);
  const double cache_fraction = opt.get_double("cache-fraction", 1.0);

  banner("Concurrent SEM queries over one shared graph + cache",
         "service API (docs/service_api.md)");

  bench_report rep(opt, "ext_concurrent_queries");
  rep.attach(topt.queue);

  const csr32 g = rmat_graph_undirected<vertex32>(rmat_a(scale, 42));
  const auto tmp =
      std::filesystem::temp_directory_path() / "asyncgt_concurrent";
  std::filesystem::create_directories(tmp);
  const std::string path = (tmp / "graph.agt").string();
  write_graph(path, g);

  const auto params = sem::device_preset_by_name(
      opt.get_string("device", "intel"), time_scale);
  sem::ssd_model dev(params);
  const std::uint64_t file_blocks =
      std::filesystem::file_size(path) / params.block_bytes + 1;
  sem::block_cache cache(std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(cache_fraction *
                                    static_cast<double>(file_blocks))));
  sem::sem_csr32 sg(path, &dev, &cache);

  const std::vector<vertex32> starts = pick_starts(g, jobs);
  std::vector<bfs_result<vertex32>> expected;
  expected.reserve(jobs);
  for (const vertex32 s : starts) expected.push_back(serial_bfs(g, s));

  // One engine for the whole bench, pre-sized so all J jobs genuinely
  // overlap (each job takes num_threads pool slots; a narrower pool would
  // FIFO-serialize the gangs instead of interleaving them).
  engine eng({.pool_threads = topt.queue.num_threads * jobs, .defaults = topt});

  bool ok = true;
  text_table table;
  table.header({"phase", "jobs", "reads", "cache hit", "evict", "sec"});

  // ---- Phase 1: single-job baseline, cold cache ----
  cache.clear();
  cache.reset_counters();
  double t_single = 0.0;
  {
    wall_timer t;
    auto r = eng.submit_bfs(sg, starts[0]).get();
    t_single = t.elapsed_seconds();
    ok &= shape_check(r.level == expected[0].level,
                      "single SEM job matches serial BFS");
  }
  const double hit_single = cache.counters().hit_rate();
  table.row({"single", "1", fmt_count(dev.counters().reads),
             fmt_ratio(hit_single), fmt_count(cache.counters().evictions),
             fmt_seconds(t_single)});
  if (rep.json_enabled()) {
    rep.section("single") = cache_section(cache, t_single);
  }

  // ---- Phase 2: J concurrent jobs, cold cache, shared everything ----
  cache.clear();
  cache.reset_counters();
  const std::uint64_t spawned_before = eng.pool().threads_spawned();
  double t_conc = 0.0;
  {
    wall_timer t;
    std::vector<job<bfs_result<vertex32>>> handles;
    handles.reserve(jobs);
    for (const vertex32 s : starts) handles.push_back(eng.submit_bfs(sg, s));
    for (std::size_t j = 0; j < jobs; ++j) {
      auto r = handles[j].get();
      ok &= shape_check(r.level == expected[j].level,
                        "concurrent SEM job " + std::to_string(j) +
                            " matches serial BFS");
    }
    t_conc = t.elapsed_seconds();
  }
  const double hit_conc = cache.counters().hit_rate();
  table.row({"concurrent", std::to_string(jobs),
             fmt_count(dev.counters().reads), fmt_ratio(hit_conc),
             fmt_count(cache.counters().evictions), fmt_seconds(t_conc)});
  if (rep.json_enabled()) {
    json_value s = cache_section(cache, t_conc);
    s.set("jobs", static_cast<std::uint64_t>(jobs));
    rep.section("concurrent") = std::move(s);
  }

  // ---- Round 2 of phase 2: the pool must already be fully warm ----
  cache.reset_counters();
  {
    std::vector<job<bfs_result<vertex32>>> handles;
    for (const vertex32 s : starts) handles.push_back(eng.submit_bfs(sg, s));
    for (auto& h : handles) h.get();
  }
  const std::uint64_t spawned_after = eng.pool().threads_spawned();

  std::printf("%s\n", table.render().c_str());

  // The acceptance criterion: concurrent jobs sharing one block cache see
  // a hit rate at least as good as a single job over the same cold cache —
  // each job's misses are the others' hits.
  ok &= shape_check(hit_conc >= hit_single,
                    "shared-cache hit rate of concurrent jobs >= single-job "
                    "baseline");
  ok &= shape_check(spawned_after == spawned_before &&
                        spawned_before ==
                            static_cast<std::uint64_t>(
                                topt.queue.num_threads * jobs),
                    "warm engine spawned zero threads across all rounds");

  if (rep.json_enabled()) {
    json_value& s = rep.section("service");
    s.set("pool_threads_spawned", spawned_after);
    s.set("jobs_submitted", eng.jobs_submitted());
    s.set("hit_rate_single", hit_single);
    s.set("hit_rate_concurrent", hit_conc);
  }
  rep.add_table(table);
  if (rep.json_enabled()) rep.section("result").set("ok", ok);
  rep.finish();

  std::error_code ec;
  std::filesystem::remove_all(tmp, ec);
  return ok ? 0 : 1;
}
