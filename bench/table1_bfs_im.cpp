// Table I: "Performance comparison of In-Memory Breadth First Search (BFS)".
//
// Columns reproduced per RMAT-A / RMAT-B graph and scale:
//   #verts, #edges, #levels, %visited  (workload characterization)
//   serial baseline (BGL stand-in) time
//   level-synchronous parallel BFS (MTGL/SNAP stand-in) time + barriers
//   BSP message-passing BFS (PBGL stand-in) time + supersteps
//   asynchronous BFS at 1 / mid / high (oversubscribed) thread counts,
//   with visit counts (label-correction work) for all variants.
//
// On the paper's 16-core machine the async runs beat MTGL by 10-18% and
// SNAP by 1.5-3x in wall time. This harness runs wherever it is built —
// possibly on a single core, where parallel wall-clock gains cannot
// materialize — so the shape checks assert the machine-independent
// structure: identical results across all algorithms, the paper's level
// counts and visited fractions (~99% for RMAT-A, ~43-49% for RMAT-B),
// zero synchronization for async versus two barriers per level for
// level-sync, and bounded label-correction overhead.
//
//   ./table1_bfs_im [--scales=14,15,16] [--threads=1,16,512] [--presets=a,b]
#include <string>
#include <vector>

#include "baselines/bsp_bfs.hpp"
#include "baselines/levelsync_bfs.hpp"
#include "baselines/serial_bfs.hpp"
#include "bench_common.hpp"
#include "bench_report.hpp"
#include "core/async_bfs.hpp"
#include "core/validate.hpp"

using namespace asyncgt;
using namespace asyncgt::bench;

namespace {

vertex32 pick_start(const csr32& g) {
  // Start from the highest out-degree vertex: deterministically inside the
  // giant component, as the paper's traversals evidently are.
  vertex32 best = 0;
  for (vertex32 v = 1; v < g.num_vertices(); ++v) {
    if (g.out_degree(v) > g.out_degree(best)) best = v;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const options opt(argc, argv);
  const auto scales = opt.get_int_list("scales", {14, 15, 16});
  const auto threads = opt.get_int_list("threads", {1, 16, 512});
  const std::string presets_arg = opt.get_string("presets", "a,b");
  const std::size_t bsp_ranks =
      static_cast<std::size_t>(opt.get_int("bsp-ranks", 16));

  banner("In-Memory Breadth First Search", "paper Table I");

  bench_report rep(opt, "table1_bfs_im");
  text_table table;
  {
    std::vector<std::string> hdr{"graph",    "# verts",  "# edges",
                                 "# levs",   "% vis",    "serial (s)",
                                 "lvlsync16 (s)", "barriers", "bsp (s)",
                                 "supersteps"};
    for (const auto t : threads) {
      hdr.push_back("async" + std::to_string(t) + " (s)");
    }
    hdr.push_back("updates/vertex");
    hdr.push_back("visits/edge");
    table.header(std::move(hdr));
  }

  bool ok = true;
  double pct_vis_a = -1.0, pct_vis_b = -1.0;

  for (const std::string preset :
       {std::string("a"), std::string("b")}) {
    if (presets_arg.find(preset) == std::string::npos) continue;
    for (const auto scale : scales) {
      const csr32 g = rmat_graph<vertex32>(
          rmat_preset(preset, static_cast<unsigned>(scale)));
      const vertex32 start = pick_start(g);

      bfs_result<vertex32> serial_r;
      const double t_serial =
          time_seconds([&] { serial_r = serial_bfs(g, start); });

      levelsync_result_extra ls_extra;
      bfs_result<vertex32> ls_r;
      const double t_ls = time_seconds(
          [&] { ls_r = levelsync_bfs(g, start, 16, &ls_extra); });

      bsp_stats bsp_extra;
      bfs_result<vertex32> bsp_r;
      const double t_bsp = time_seconds(
          [&] { bsp_r = bsp_bfs(g, start, bsp_ranks, &bsp_extra); });

      std::vector<double> t_async;
      std::vector<bfs_result<vertex32>> async_runs;
      for (const auto t : threads) {
        visitor_queue_config cfg;
        cfg.num_threads = static_cast<std::size_t>(t);
        rep.attach(cfg);
        bfs_result<vertex32> r;
        t_async.push_back(
            time_seconds([&] { r = async_bfs(g, start, cfg); }));
        async_runs.push_back(std::move(r));
      }
      // Mid-thread-count run: the configuration the paper's per-visit
      // overhead discussion describes (threads ~ cores).
      const bfs_result<vertex32>& async_r =
          async_runs[async_runs.size() / 2];

      const double pct_vis = 100.0 *
                             static_cast<double>(serial_r.visited_count()) /
                             static_cast<double>(g.num_vertices());
      if (preset == "a") pct_vis_a = pct_vis;
      if (preset == "b") pct_vis_b = pct_vis;
      // Label-correction overhead: how often a vertex's level was
      // (re)written. 1.0 = no wasted corrections; the paper accepts
      // "possibly requiring multiple visits per vertex" as the price of
      // asynchrony. Measured on the most oversubscribed run (worst case).
      const double updates_per_vertex =
          static_cast<double>(async_r.updates) /
          static_cast<double>(async_r.visited_count());
      // Relaxation traffic: visitors executed per edge (1.0 = each edge
      // relaxed exactly once, as in the serial algorithm).
      const double visits_per_edge =
          static_cast<double>(async_r.stats.visits) /
          static_cast<double>(g.num_edges());

      std::vector<std::string> row{
          rmat_label(preset, static_cast<unsigned>(scale)),
          fmt_count(g.num_vertices()),
          fmt_count(g.num_edges()),
          std::to_string(serial_r.max_level()),
          fmt_seconds(pct_vis).substr(0, 5) + "%",
          fmt_seconds(t_serial),
          fmt_seconds(t_ls),
          fmt_count(ls_extra.barrier_crossings),
          fmt_seconds(t_bsp),
          fmt_count(bsp_extra.supersteps)};
      for (const double t : t_async) row.push_back(fmt_seconds(t));
      row.push_back(fmt_ratio(updates_per_vertex));
      row.push_back(fmt_ratio(visits_per_edge));
      table.row(std::move(row));

      // Correctness shape checks (quiet unless failing): all variants agree.
      bool async_all_match = true;
      for (const auto& r : async_runs) {
        async_all_match &= (r.level == serial_r.level);
      }
      if (ls_r.level != serial_r.level || bsp_r.level != serial_r.level ||
          !async_all_match) {
        ok &= shape_check(false,
                          "all BFS variants produce identical levels on " +
                              rmat_label(preset,
                                         static_cast<unsigned>(scale)));
      }
      ok &= validate_distances(g, start, async_r.level, true).ok;
      // Async label correction stays bounded (paper: priority queues keep
      // re-visits rare on scale-free graphs; small-diameter graphs bound
      // corrections by the level count).
      ok &= shape_check(updates_per_vertex < 3.0,
                        rmat_label(preset, static_cast<unsigned>(scale)) +
                            ": async BFS label corrections stay below 3 "
                            "per reached vertex even fully oversubscribed");
      // The async traversal used zero global synchronizations; level-sync
      // paid two barriers per level.
      ok &= shape_check(ls_extra.barrier_crossings >=
                            2 * serial_r.max_level(),
                        rmat_label(preset, static_cast<unsigned>(scale)) +
                            ": level-sync pays >= 2 barriers per BFS level "
                            "(async pays none)");
    }
  }

  std::printf("%s\n", table.render().c_str());

  if (pct_vis_a >= 0 && pct_vis_b >= 0) {
    ok &= shape_check(pct_vis_a > 90.0,
                      "RMAT-A reaches ~all vertices (paper: ~99% visited)");
    ok &= shape_check(pct_vis_b < pct_vis_a,
                      "RMAT-B reaches a much smaller fraction (paper: "
                      "~43-49% visited)");
  }
  rep.add_table(table);
  if (rep.json_enabled()) rep.section("result").set("ok", ok);
  rep.finish();
  return ok ? 0 : 1;
}
