// Ablation: hash-routed per-thread queues (paper §III-A).
//
// Two claims are isolated:
//   1. "a near-uniform hash function may improve load balance amongst the
//      visitor queues as high-cost vertices will be uniformly distributed
//      across the queues" — compared by routing with the avalanching hash
//      vs. the raw id (v % queues) on an *unscrambled* RMAT-B graph, whose
//      hubs cluster at low ids.
//   2. many queues reduce lock contention vs. few queues — reported as a
//      thread-count sweep of pushes/sec (meaningful on multicore hosts;
//      reported without a gate on single-core ones).
//
//   ./ablation_queues [--scale=13] [--threads=16]
#include <string>

#include "bench_common.hpp"
#include "bench_report.hpp"
#include "core/async_cc.hpp"
#include "gen/rmat.hpp"

using namespace asyncgt;
using namespace asyncgt::bench;

int main(int argc, char** argv) {
  const options opt(argc, argv);
  const auto scale = static_cast<unsigned>(opt.get_int("scale", 13));
  const auto threads = static_cast<std::size_t>(opt.get_int("threads", 16));

  banner("Queue-routing hash ablation", "paper section III-A");

  bench_report rep(opt, "ablation_queues");

  // Unscrambled RMAT-B: hub vertices cluster at low ids, the adversarial
  // layout for naive modulo routing.
  rmat_params p = rmat_b(scale);
  p.scramble_ids = false;
  const csr32 g = rmat_graph_undirected<vertex32>(p);

  text_table table;
  table.header({"routing", "time (s)", "visits", "imbalance CV",
                "max queue len"});

  double cv[2] = {0, 0};
  for (const bool identity : {false, true}) {
    visitor_queue_config cfg;
    cfg.num_threads = threads;
    cfg.identity_hash = identity;
    cc_result<vertex32> r;
    const double secs = time_seconds([&] { r = async_cc(g, cfg); });
    cv[identity ? 1 : 0] = r.stats.load_imbalance_cv();
    table.row({identity ? "identity (v % queues)" : "avalanche hash",
               fmt_seconds(secs), fmt_count(r.stats.visits),
               fmt_ratio(r.stats.load_imbalance_cv()),
               fmt_count(r.stats.max_queue_length)});
  }
  std::printf("%s\n", table.render().c_str());

  // Note: for CC every vertex is seeded once, so *visit counts* per queue
  // are dominated by the seeding and stay fairly even; the hash claim is
  // about where the heavy (hub) vertices land. CV over visits still shows
  // the skew because hub-heavy queues absorb the extra corrective visits.
  const bool ok =
      shape_check(cv[0] <= cv[1],
                  "avalanche-hash routing balances queues at least as well "
                  "as identity routing on hub-clustered ids");
  rep.add_table(table);
  if (rep.json_enabled()) rep.section("result").set("ok", ok);
  rep.finish();
  return ok ? 0 : 1;
}