// Ablation: semi-sorted SEM access (paper §IV-C).
//
// "the prioritized visitor queues have an additional secondary sorting
// parameter, the vertex identifier. This increases access locality to the
// storage devices by semi-sorting access ... the vertices in level 1 will
// be visited in a semi-sorted order to increase locality."
//
// With the page-cache simulation attached, locality is measurable: adjacent
// vertex ids share 4 KiB blocks of the on-disk CSR, so semi-sorted visits
// raise the cache hit rate and cut device reads. This harness runs SEM BFS
// with the secondary sort on and off under a deliberately small cache.
//
//   ./ablation_semisort [--scale=13] [--threads=64] [--cache-fraction=0.05]
#include <filesystem>

#include "bench_common.hpp"
#include "bench_report.hpp"
#include "core/async_bfs.hpp"
#include "graph/graph_io.hpp"
#include "sem/block_cache.hpp"
#include "sem/device_presets.hpp"
#include "sem/sem_csr.hpp"

using namespace asyncgt;
using namespace asyncgt::bench;

int main(int argc, char** argv) {
  const options opt(argc, argv);
  const auto scale = static_cast<unsigned>(opt.get_int("scale", 13));
  const auto threads = static_cast<std::size_t>(opt.get_int("threads", 64));
  const double cache_fraction = opt.get_double("cache-fraction", 0.05);
  const double time_scale = opt.get_double("time-scale", 1.0);

  banner("SEM semi-sort locality ablation", "paper section IV-C");

  bench_report rep(opt, "ablation_semisort");

  // Unscrambled ids: RMAT locality in id space, which is what the on-disk
  // CSR layout (and the paper's web crawls, crawled host-by-host) look like.
  rmat_params p = rmat_a(scale);
  p.scramble_ids = false;
  const csr32 g = rmat_graph<vertex32>(p);
  const auto tmp =
      std::filesystem::temp_directory_path() / "asyncgt_semisort.agt";
  write_graph(tmp.string(), g);
  const std::uint64_t file_blocks =
      std::filesystem::file_size(tmp) / 4096 + 1;
  const auto cache_blocks = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(cache_fraction *
                                    static_cast<double>(file_blocks)));

  text_table table;
  table.header({"secondary sort", "time (s)", "device reads", "cache hit",
                "blocks read"});

  std::uint64_t device_reads[2] = {0, 0};
  double hit_rate[2] = {0, 0};
  for (const bool semisort : {false, true}) {
    sem::ssd_model dev(sem::intel_params(time_scale));
    sem::block_cache cache(cache_blocks);
    sem::sem_csr32 sg(tmp.string(), &dev, &cache);
    visitor_queue_config cfg;
    cfg.num_threads = threads;
    cfg.secondary_vertex_sort = semisort;
    bfs_result<vertex32> r;
    const double secs =
        time_seconds([&] { r = async_bfs(sg, vertex32{0}, cfg); });
    device_reads[semisort ? 1 : 0] = dev.counters().reads;
    hit_rate[semisort ? 1 : 0] = cache.counters().hit_rate();
    table.row({semisort ? "on (paper SEM config)" : "off",
               fmt_seconds(secs), fmt_count(dev.counters().reads),
               fmt_ratio(cache.counters().hit_rate()),
               fmt_count(dev.counters().read_blocks)});
  }
  std::printf("%s\n", table.render().c_str());

  const bool ok = shape_check(
      hit_rate[1] >= hit_rate[0] * 0.98,
      "semi-sorted access achieves at least the unsorted cache hit rate "
      "(paper: semi-sorting 'increases access locality')");
  shape_check(device_reads[1] <= device_reads[0],
              "semi-sorted access issues no more device reads (advisory)");
  rep.add_table(table);
  if (rep.json_enabled()) rep.section("result").set("ok", ok);
  rep.finish();
  return ok ? 0 : 1;
}