// Table II: "Performance comparison of In-Memory Single Source Shortest
// Path (SSSP)".
//
// Reproduces the paper's grid: {RMAT-A, RMAT-B} x {UW, LUW} weight schemes,
// comparing the serial Dijkstra baseline (BGL stand-in) against the
// asynchronous SSSP at 1 / mid / oversubscribed thread counts, plus the
// delta-stepping comparator. The paper reports speedups of 12-31x over BGL
// on 16 cores; on arbitrary hardware the shape checks assert the
// machine-independent content: identical distances everywhere, label-
// correction overhead bounded, and the prioritized queue doing less work
// than unordered (LIFO) processing.
//
//   ./table2_sssp_im [--scales=13,14] [--threads=1,16,512]
#include <string>
#include <vector>

#include "baselines/delta_stepping.hpp"
#include "baselines/serial_sssp.hpp"
#include "bench_common.hpp"
#include "bench_report.hpp"
#include "core/async_sssp.hpp"
#include "core/validate.hpp"
#include "gen/weights.hpp"

using namespace asyncgt;
using namespace asyncgt::bench;

namespace {

vertex32 pick_start(const csr32& g) {
  vertex32 best = 0;
  for (vertex32 v = 1; v < g.num_vertices(); ++v) {
    if (g.out_degree(v) > g.out_degree(best)) best = v;
  }
  return best;
}

std::string scheme_name(weight_scheme s) {
  return s == weight_scheme::uniform ? "UW" : "LUW";
}

}  // namespace

int main(int argc, char** argv) {
  const options opt(argc, argv);
  const auto scales = opt.get_int_list("scales", {13, 14});
  const auto threads = opt.get_int_list("threads", {1, 16, 512});

  banner("In-Memory Single Source Shortest Path", "paper Table II");

  bench_report rep(opt, "table2_sssp_im");

  text_table table;
  {
    std::vector<std::string> hdr{"graph", "weights", "# verts",
                                 "dijkstra (s)", "delta-step (s)"};
    for (const auto t : threads) {
      hdr.push_back("async" + std::to_string(t) + " (s)");
    }
    hdr.push_back("updates/vertex");
    hdr.push_back("fifo work vs prio");
    table.header(std::move(hdr));
  }

  bool ok = true;
  for (const std::string preset : {std::string("a"), std::string("b")}) {
    for (const weight_scheme scheme :
         {weight_scheme::uniform, weight_scheme::log_uniform}) {
      for (const auto scale : scales) {
        const csr32 g = add_weights(
            rmat_graph<vertex32>(
                rmat_preset(preset, static_cast<unsigned>(scale))),
            scheme, 1234);
        const vertex32 start = pick_start(g);

        sssp_result<vertex32> dij;
        const double t_dij =
            time_seconds([&] { dij = dijkstra_sssp(g, start); });

        sssp_result<vertex32> ds;
        const double t_ds = time_seconds([&] {
          ds = delta_stepping_sssp(g, start,
                                   std::max<dist_t>(1, g.num_vertices() / 8));
        });

        std::vector<double> t_async;
        std::vector<sssp_result<vertex32>> async_runs;
        for (const auto t : threads) {
          visitor_queue_config cfg;
          cfg.num_threads = static_cast<std::size_t>(t);
          sssp_result<vertex32> r;
          t_async.push_back(
              time_seconds([&] { r = async_sssp(g, start, cfg); }));
          async_runs.push_back(std::move(r));
        }
        // Overhead metrics are taken from the mid thread count (threads ~
        // cores, the configuration the paper's discussion describes).
        const sssp_result<vertex32>& async_r =
            async_runs[async_runs.size() / 2];

        // Ordering ablation inline: FIFO with one thread = Bellman-Ford-like
        // round-robin correction. (LIFO is measured only in
        // ablation_priority at small scale — stack-order correction on
        // weighted graphs can do exponentially more work.)
        visitor_queue_config fifo_cfg;
        fifo_cfg.num_threads = 1;
        fifo_cfg.order = queue_order::fifo;
        const auto fifo_r = async_sssp(g, start, fifo_cfg);
        visitor_queue_config prio_cfg;
        prio_cfg.num_threads = 1;
        const auto prio_r = async_sssp(g, start, prio_cfg);

        const double updates_per_vertex =
            static_cast<double>(async_r.updates) /
            static_cast<double>(async_r.visited_count());

        std::vector<std::string> row{
            rmat_label(preset, static_cast<unsigned>(scale)),
            scheme_name(scheme), fmt_count(g.num_vertices()),
            fmt_seconds(t_dij), fmt_seconds(t_ds)};
        for (const double t : t_async) row.push_back(fmt_seconds(t));
        row.push_back(fmt_ratio(updates_per_vertex));
        row.push_back(fmt_ratio(
            static_cast<double>(fifo_r.stats.visits) /
            static_cast<double>(std::max<std::uint64_t>(
                prio_r.stats.visits, 1))));
        table.row(std::move(row));

        const std::string label =
            rmat_label(preset, static_cast<unsigned>(scale)) + "/" +
            scheme_name(scheme);
        bool async_all_match = true;
        for (const auto& r : async_runs) {
          async_all_match &= (r.dist == dij.dist);
        }
        if (!async_all_match || ds.dist != dij.dist ||
            fifo_r.dist != dij.dist) {
          ok &= shape_check(false,
                            label + ": all SSSP variants agree with Dijkstra");
        }
        ok &= validate_distances(g, start, async_r.dist).ok;
        ok &= shape_check(updates_per_vertex < 4.0,
                          label + ": async label-correction overhead stays "
                                  "bounded (multiple corrections per vertex "
                                  "are expected but rare)");
        ok &= shape_check(prio_r.stats.visits <= fifo_r.stats.visits,
                          label + ": prioritized ordering does no more work "
                                  "than round-robin (FIFO) correction");
      }
    }
  }

  std::printf("%s\n", table.render().c_str());
  rep.add_table(table);
  if (rep.json_enabled()) rep.section("result").set("ok", ok);
  rep.finish();
  return ok ? 0 : 1;
}