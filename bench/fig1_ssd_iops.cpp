// Figure 1: "Multithreaded random read I/O performance for three NAND Flash
// configurations" — IOPS versus number of requesting threads, for the
// FusionIO / Intel / Corsair device models.
//
// The paper's claim this regenerates: "for all configurations tested,
// significant improvements in I/O per second (IOPS) is seen as an increasing
// number of threads issue read requests", plateauing near 200k / 60k / 30k
// IOPS respectively. Shape checks verify monotone scaling to the plateau
// and the device ordering.
//
//   ./fig1_ssd_iops [--threads=1,2,4,...,256] [--window=0.25]
//                   [--time-scale=1.0]
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "bench_report.hpp"
#include "sem/device_presets.hpp"
#include "sem/ssd_model.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace asyncgt;
using namespace asyncgt::bench;

namespace {

double measure_iops(const sem::ssd_params& params, std::size_t threads,
                    double window_seconds) {
  sem::ssd_model dev(params);
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) dev.read(4096);
    });
  }
  wall_timer timer;
  std::this_thread::sleep_for(
      std::chrono::duration<double>(window_seconds));
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  const double elapsed = timer.elapsed_seconds();
  return static_cast<double>(dev.counters().reads) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  const options opt(argc, argv);
  const auto thread_counts =
      opt.get_int_list("threads", {1, 2, 4, 8, 16, 32, 64, 128, 256});
  const double window = opt.get_double("window", 0.25);
  const double time_scale = opt.get_double("time-scale", 1.0);

  banner("Multithreaded random read IOPS on simulated NAND flash",
         "paper Figure 1");

  const auto devices = sem::all_device_presets(time_scale);
  text_table table;
  table.header({"threads", "FusionIO (IOPS)", "Intel (IOPS)",
                "Corsair (IOPS)"});

  // iops[device][thread_index]
  std::vector<std::vector<double>> iops(devices.size());
  for (const auto t : thread_counts) {
    std::vector<std::string> row{std::to_string(t)};
    for (std::size_t d = 0; d < devices.size(); ++d) {
      const double v = measure_iops(devices[d], static_cast<std::size_t>(t),
                                    window);
      iops[d].push_back(v);
      row.push_back(fmt_count(static_cast<std::uint64_t>(v)));
    }
    table.row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());

  bool ok = true;
  // Scaling region: IOPS at max threads far exceeds single-thread IOPS.
  for (std::size_t d = 0; d < devices.size(); ++d) {
    ok &= shape_check(iops[d].back() > 4.0 * iops[d].front(),
                      devices[d].name +
                          ": multithreading lifts IOPS well above the "
                          "single-thread rate (paper: 'significant "
                          "improvements ... as an increasing number of "
                          "threads issue read requests')");
  }
  // Plateau: max-thread IOPS within 35% of the modelled ceiling.
  for (std::size_t d = 0; d < devices.size(); ++d) {
    const double plateau = devices[d].plateau_iops();
    ok &= shape_check(iops[d].back() > 0.65 * plateau &&
                          iops[d].back() < 1.35 * plateau,
                      devices[d].name + ": plateau near " +
                          fmt_count(static_cast<std::uint64_t>(plateau)) +
                          " IOPS");
  }
  // Ordering: FusionIO > Intel > Corsair at saturation.
  ok &= shape_check(
      iops[0].back() > iops[1].back() && iops[1].back() > iops[2].back(),
      "device ordering at saturation: FusionIO > Intel > Corsair");

  bench_report rep(opt, "fig1_ssd_iops");
  rep.add_table(table);
  if (rep.json_enabled()) {
    json_value& s = rep.section("iops");
    for (std::size_t d = 0; d < devices.size(); ++d) {
      json_value series = json_value::array();
      for (const double v : iops[d]) series.push(v);
      s.set(devices[d].name, std::move(series));
    }
    rep.section("result").set("ok", ok);
  }
  rep.finish();
  return ok ? 0 : 1;
}
