// Extension: hot-block-aware SEM scheduling acceptance
// (docs/hot_blocks.md).
//
// The paper's semi-sorted visit order gives SEM traversals their locality;
// this harness measures what the live pending-visitor signal buys on top of
// it. It runs the same semi-external BFS and CC twice over a cache sized
// well below the graph (default 10% of the file's blocks):
//
//   baseline  static semi-sort: priority ordering + LRU cache (the seed
//             configuration of table4/table5);
//   hot       --ordering=hot + --cache-policy=pressure: visitors whose
//             block is cache-resident pop first (cold-block visitors wait
//             while their backlog accumulates), and eviction avoids blocks
//             with queued work.
//
// and asserts the three claims the machinery is built on:
//
//   1. identity: hot scheduling changes I/O traffic, never labels — every
//      mode must match the serial baseline bit-for-bit;
//   2. efficiency: bytes read from the device per completed visit shrink
//      by >= --min-gain (default 1.5x) under hot scheduling;
//   3. conservation: after a clean run the pressure tracker drains to zero
//      (every enqueued visitor was completed exactly once).
//
// A third advisory row adds --prefetch-hot on the coalescing backend: the
// readahead lane must issue, and wasted prefetches are reported (they
// charge the device honestly, so this row's bytes/visit may exceed the hot
// row's).
//
//   ./ext_hot_blocks [--scale=14] [--threads=64] [--time-scale=0.02]
//                    [--cache-fraction=0.10] [--hot-threshold=4]
//                    [--min-gain=1.5] [--json F]
#include <filesystem>
#include <string>
#include <vector>

#include "baselines/serial_bfs.hpp"
#include "baselines/serial_cc.hpp"
#include "bench_common.hpp"
#include "bench_report.hpp"
#include "core/async_bfs.hpp"
#include "core/async_cc.hpp"
#include "graph/graph_io.hpp"
#include "sem/device_presets.hpp"
#include "sem/sem_config.hpp"
#include "sem/sem_csr.hpp"

using namespace asyncgt;
using namespace asyncgt::bench;
using telemetry::json_value;

namespace {

struct mode_result {
  double seconds = 0.0;
  std::uint64_t read_bytes = 0;
  std::uint64_t visits = 0;
  std::uint64_t hot_pops = 0;
  bool labels_ok = false;
  sem::cache_counters cache;
  // Pressure totals (zero-initialized when the mode builds no tracker).
  std::uint64_t pressure_increments = 0;
  std::uint64_t pressure_decrements = 0;
  std::uint64_t pressure_pending = 0;
  sem::prefetcher::counters prefetch;
  bool has_prefetch = false;

  double bytes_per_visit() const {
    return visits == 0 ? 0.0
                       : static_cast<double>(read_bytes) /
                             static_cast<double>(visits);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const options opt(argc, argv);
  const auto scale = static_cast<unsigned>(opt.get_int("scale", 14));
  traversal_options topt = traversal_options::from_flags(opt, true);
  if (!opt.has("threads")) topt.queue.num_threads = 64;
  const double time_scale = opt.get_double("time-scale", 0.02);
  // Acceptance runs the cache well under the file size — the signal only
  // matters when residency is scarce.
  const double cache_fraction =
      topt.cache_fraction >= 0.0 ? topt.cache_fraction : 0.10;
  const double min_gain = opt.get_double("min-gain", 1.5);

  banner("Hot-Block-Aware SEM Scheduling",
         "extension over paper §IV (docs/hot_blocks.md)");
  bench_report rep(opt, "ext_hot_blocks");

  const csr32 g = rmat_graph<vertex32>(rmat_a(scale, 42));
  vertex32 start = 0;
  for (vertex32 v = 1; v < g.num_vertices(); ++v) {
    if (g.out_degree(v) > g.out_degree(start)) start = v;
  }
  const auto tmp =
      std::filesystem::temp_directory_path() / "asyncgt_ext_hot_blocks";
  std::filesystem::create_directories(tmp);
  const std::string path = (tmp / "graph.agt").string();
  write_graph(path, g);

  const bfs_result<vertex32> ref_bfs = serial_bfs(g, start);
  const cc_result<vertex32> ref_cc = serial_cc(g);
  const auto params = sem::device_preset_by_name(
      opt.get_string("device", "intel"), time_scale);

  // One run of `algo` ("bfs" | "cc") under one scheduling mode. Everything
  // except the ordering / cache-policy / prefetch triple is held constant.
  const auto run_mode = [&](const std::string& algo, bool hot,
                            const std::string& policy, bool prefetch,
                            const std::string& backend) {
    sem::ssd_model dev(params);
    sem::sem_config scfg(path);
    scfg.with_device(&dev)
        .with_cache_fraction(cache_fraction)
        .with_cache_policy(policy)
        .with_io_backend(backend, topt.io_batch)
        .with_retries(topt.io_retries, topt.io_backoff_us)
        .with_hot_ordering(hot, topt.hot_threshold)
        .with_prefetch_hot(prefetch);
    auto bundle = scfg.open<vertex32>();
    visitor_queue_config cfg = topt.queue;
    bundle.wire_queue(cfg);
    mode_result r;
    if (algo == "bfs") {
      bfs_result<vertex32> out;
      r.seconds = time_seconds(
          [&] { out = async_bfs(*bundle.graph, start, cfg); });
      r.labels_ok = out.level == ref_bfs.level;
      r.visits = out.work().visits;
      r.hot_pops = out.stats.hot_pops;
    } else {
      cc_result<vertex32> out;
      r.seconds =
          time_seconds([&] { out = async_cc(*bundle.graph, cfg); });
      r.labels_ok = out.component == ref_cc.component;
      r.visits = out.work().visits;
      r.hot_pops = out.stats.hot_pops;
    }
    if (bundle.prefetch != nullptr) {
      bundle.prefetch->drain();
      r.prefetch = bundle.prefetch->stats();
      r.has_prefetch = true;
    }
    r.read_bytes = dev.counters().read_bytes;
    if (bundle.cache != nullptr) r.cache = bundle.cache->counters();
    if (bundle.pressure != nullptr) {
      r.pressure_increments = bundle.pressure->total_increments();
      r.pressure_decrements = bundle.pressure->total_decrements();
      r.pressure_pending = bundle.pressure->total_pending();
    }
    return r;
  };

  text_table table;
  table.header({"algo", "mode", "time (s)", "MiB read", "visits",
                "bytes/visit", "cache hit", "rejects", "hot pops",
                "labels"});

  bool ok = true;
  json_value modes = json_value::array();
  const auto add_row = [&](const std::string& algo, const std::string& name,
                           const mode_result& r) {
    table.row({algo, name, fmt_seconds(r.seconds),
               fmt_count(r.read_bytes >> 20), fmt_count(r.visits),
               fmt_count(static_cast<std::uint64_t>(r.bytes_per_visit())),
               fmt_ratio(r.cache.hit_rate()),
               fmt_count(r.cache.policy_rejects), fmt_count(r.hot_pops),
               r.labels_ok ? "ok" : "DIFF"});
    if (rep.json_enabled()) {
      json_value m = json_value::object();
      m.set("algo", algo);
      m.set("mode", name);
      m.set("seconds", r.seconds);
      m.set("read_bytes", r.read_bytes);
      m.set("visits", r.visits);
      m.set("bytes_per_visit", r.bytes_per_visit());
      m.set("hot_pops", r.hot_pops);
      m.set("labels_ok", r.labels_ok);
      m.set("cache", bench::to_json(r.cache));
      if (r.pressure_increments != 0 || r.pressure_decrements != 0) {
        json_value p = json_value::object();
        p.set("increments", r.pressure_increments);
        p.set("decrements", r.pressure_decrements);
        p.set("pending", r.pressure_pending);
        m.set("pressure", std::move(p));
      }
      if (r.has_prefetch) {
        m.set("prefetch", bench::to_json(r.prefetch, r.cache));
      }
      modes.push(std::move(m));
    }
  };

  double gains[2] = {0.0, 0.0};
  const char* algos[2] = {"bfs", "cc"};
  for (int a = 0; a < 2; ++a) {
    const std::string algo = algos[a];
    const mode_result base = run_mode(algo, false, "lru", false, "sync");
    const mode_result hot = run_mode(algo, true, "pressure", false, "sync");
    add_row(algo, "baseline", base);
    add_row(algo, "hot", hot);

    ok &= shape_check(base.labels_ok,
                      algo + " baseline labels match the serial reference");
    ok &= shape_check(hot.labels_ok,
                      algo + " hot-mode labels match the serial reference "
                             "(scheduling is I/O-only)");
    ok &= shape_check(hot.hot_pops > 0,
                      algo + " hot ordering actually popped from the hot "
                             "band");
    ok &= shape_check(
        hot.pressure_increments == hot.pressure_decrements &&
            hot.pressure_pending == 0,
        algo + " pressure drains to zero after a clean run (" +
            std::to_string(hot.pressure_increments) + " enq == " +
            std::to_string(hot.pressure_decrements) + " done)");
    gains[a] = hot.bytes_per_visit() > 0.0
                   ? base.bytes_per_visit() / hot.bytes_per_visit()
                   : 0.0;
    ok &= shape_check(
        gains[a] >= min_gain,
        algo + ": hot scheduling reads >=" + fmt_ratio(min_gain) +
            " fewer bytes per completed visit (got " + fmt_ratio(gains[a]) +
            "x at cache=" + fmt_ratio(cache_fraction) + ")");
  }
  table.rule();

  // Advisory prefetch row (BFS only): the readahead lane must issue on a
  // batching backend; its bytes/visit is reported, not gated — wasted
  // prefetches charge the device on purpose.
  const mode_result pre =
      run_mode("bfs", true, "pressure", true, "coalescing");
  add_row("bfs", "hot+prefetch", pre);
  ok &= shape_check(pre.labels_ok,
                    "bfs hot+prefetch labels match the serial reference");
  shape_check(pre.has_prefetch && pre.prefetch.issued > 0,
              "prefetch lane issued readahead (advisory)");

  std::printf("%s\n", table.render().c_str());

  rep.add_table(table);
  if (rep.json_enabled()) {
    json_value& s = rep.section("hot_blocks");
    s.set("device", params.name);
    s.set("time_scale", time_scale);
    s.set("scale", static_cast<std::uint64_t>(scale));
    s.set("cache_fraction", cache_fraction);
    s.set("hot_threshold",
          static_cast<std::uint64_t>(topt.hot_threshold));
    s.set("min_gain", min_gain);
    s.set("bfs_gain", gains[0]);
    s.set("cc_gain", gains[1]);
    s.set("modes", std::move(modes));
    rep.section("result").set("ok", ok);
  }
  rep.finish();

  std::error_code ec;
  std::filesystem::remove_all(tmp, ec);
  return ok ? 0 : 1;
}
