// Ablation: thread oversubscription (paper §IV-A).
//
// "Our implementation can benefit from using more threads than cores ...
// using as many as 512 threads on 16 cores offers substantial benefit."
// Two mechanisms are claimed: (1) more queues -> less lock contention
// in-memory, and (2) more outstanding I/O requests -> device saturation in
// semi-external memory. This harness sweeps thread counts for both settings.
// Mechanism (2) is hardware-independent (blocked threads cost no CPU), so
// its shape check must hold anywhere; mechanism (1) needs real cores, so the
// in-memory sweep is reported without a pass/fail gate.
//
//   ./ablation_oversubscription [--scale=14] [--threads=1,4,16,64,256,512]
//                               [--sem-scale=12] [--time-scale=1]
#include <filesystem>
#include <vector>

#include "bench_common.hpp"
#include "bench_report.hpp"
#include "core/async_bfs.hpp"
#include "graph/graph_io.hpp"
#include "sem/device_presets.hpp"
#include "sem/sem_csr.hpp"

using namespace asyncgt;
using namespace asyncgt::bench;

int main(int argc, char** argv) {
  const options opt(argc, argv);
  const auto scale = static_cast<unsigned>(opt.get_int("scale", 14));
  const auto sem_scale = static_cast<unsigned>(opt.get_int("sem-scale", 12));
  const auto threads =
      opt.get_int_list("threads", {1, 4, 16, 64, 256, 512});
  const double time_scale = opt.get_double("time-scale", 1.0);

  banner("Thread oversubscription ablation", "paper section IV-A");

  bench_report rep(opt, "ablation_oversubscription");

  const csr32 g = rmat_graph<vertex32>(rmat_a(scale));
  const csr32 sem_g = rmat_graph<vertex32>(rmat_a(sem_scale));
  const auto tmp =
      std::filesystem::temp_directory_path() / "asyncgt_oversub.agt";
  write_graph(tmp.string(), sem_g);

  text_table table;
  table.header({"threads", "IM BFS (s)", "IM visits", "SEM BFS intel (s)",
                "SEM IOPS"});

  std::vector<double> sem_times;
  for (const auto t : threads) {
    visitor_queue_config cfg;
    cfg.num_threads = static_cast<std::size_t>(t);

    bfs_result<vertex32> im_r;
    const double t_im =
        time_seconds([&] { im_r = async_bfs(g, vertex32{0}, cfg); });

    sem::ssd_model dev(sem::intel_params(time_scale));
    sem::sem_csr32 sg(tmp.string(), &dev);
    visitor_queue_config sem_cfg = cfg;
    sem_cfg.secondary_vertex_sort = true;
    bfs_result<vertex32> sem_r;
    const double t_sem =
        time_seconds([&] { sem_r = async_bfs(sg, vertex32{0}, sem_cfg); });
    sem_times.push_back(t_sem);

    table.row({std::to_string(t), fmt_seconds(t_im),
               fmt_count(im_r.stats.visits), fmt_seconds(t_sem),
               fmt_count(static_cast<std::uint64_t>(
                   static_cast<double>(dev.counters().reads) /
                   std::max(t_sem, 1e-9)))});
  }
  std::printf("%s\n", table.render().c_str());

  bool ok = true;
  // SEM: the best oversubscribed run beats the single-thread run by a large
  // factor — the I/O latency-hiding claim, valid on any core count.
  double best_sem = sem_times.front();
  for (const double t : sem_times) best_sem = std::min(best_sem, t);
  ok &= shape_check(best_sem * 4.0 < sem_times.front(),
                    "oversubscribed SEM BFS is >=4x faster than "
                    "single-thread SEM BFS (I/O latency hiding)");
  // SEM: adding threads never dramatically regresses (no thrashing).
  ok &= shape_check(sem_times.back() < sem_times.front(),
                    "SEM BFS at the highest thread count still beats one "
                    "thread (paper: '512 threads outperform 16 threads')");
  rep.add_table(table);
  if (rep.json_enabled()) rep.section("result").set("ok", ok);
  rep.finish();
  return ok ? 0 : 1;
}