// Extension bench: asynchronous PageRank and k-core versus their
// synchronous baselines (not a paper table — the paper frames its
// traversals as "building blocks to many graph analysis algorithms"; this
// harness measures the generalization of the visitor queue to two such
// blocks, with the same work/synchronization accounting as Tables I-III).
//
//   ./ext_async_analytics [--scale=11] [--threads=1,16] [--tolerance=1e-6]
#include <cmath>
#include <string>

#include "baselines/power_iteration.hpp"
#include "baselines/serial_kcore.hpp"
#include "bench_common.hpp"
#include "bench_report.hpp"
#include "core/async_kcore.hpp"
#include "core/async_pagerank.hpp"
#include "gen/webgen.hpp"

using namespace asyncgt;
using namespace asyncgt::bench;

int main(int argc, char** argv) {
  const options opt(argc, argv);
  const auto scale = static_cast<unsigned>(opt.get_int("scale", 11));
  const auto threads = opt.get_int_list("threads", {1, 16});
  const double tolerance = opt.get_double("tolerance", 1e-6);

  banner("Extension: asynchronous PageRank and k-core on the visitor queue",
         "generalization of the paper's framework (not a paper table)");

  bench_report rep(opt, "ext_async_analytics");

  bool ok = true;
  text_table table;
  table.header({"graph", "algorithm", "threads", "time (s)", "work",
                "error / agreement"});

  for (const std::string preset : {std::string("a"), std::string("b")}) {
    const csr32 g = rmat_graph_undirected<vertex32>(rmat_preset(preset, scale));

    // --- PageRank ---
    power_iteration_result pi;
    const double t_pi = time_seconds(
        [&] { pi = power_iteration_pagerank(g, 0.85, tolerance / 10); });
    table.row({rmat_label(preset, scale), "power-iteration (sync)", "1",
               fmt_seconds(t_pi),
               fmt_count(pi.iterations * g.num_edges()) + " edge ops",
               std::to_string(pi.iterations) + " barrier rounds"});

    for (const auto t : threads) {
      visitor_queue_config cfg;
      cfg.num_threads = static_cast<std::size_t>(t);
      pagerank_options popt;
      popt.tolerance = tolerance;
      pagerank_result<vertex32> pr;
      const double secs =
          time_seconds([&] { pr = async_pagerank(g, popt, cfg); });
      double l1 = 0;
      for (std::size_t v = 0; v < g.num_vertices(); ++v) {
        l1 += std::fabs(pr.rank[v] - pi.rank[v]);
      }
      table.row({rmat_label(preset, scale), "async residual-push",
                 std::to_string(t), fmt_seconds(secs),
                 fmt_count(pr.flushes) + " flushes",
                 "L1 vs sync = " + std::to_string(l1)});
      const double bound =
          tolerance * static_cast<double>(g.num_vertices()) / 0.15;
      ok &= shape_check(l1 < bound,
                        rmat_label(preset, scale) + " t=" + std::to_string(t) +
                            ": async PageRank converges to the synchronous "
                            "fixed point (within tol*N/(1-a))");
    }
    table.rule();

    // --- k-core ---
    std::vector<std::uint32_t> peel;
    const double t_peel = time_seconds([&] { peel = serial_kcore(g); });
    table.row({rmat_label(preset, scale), "bucket peeling (serial)", "1",
               fmt_seconds(t_peel), fmt_count(g.num_edges()) + " edge ops",
               "exact"});
    for (const auto t : threads) {
      visitor_queue_config cfg;
      cfg.num_threads = static_cast<std::size_t>(t);
      kcore_result<vertex32> kc;
      const double secs = time_seconds([&] { kc = async_kcore(g, cfg); });
      const bool agree = (kc.core == peel);
      table.row({rmat_label(preset, scale), "async h-index",
                 std::to_string(t), fmt_seconds(secs),
                 fmt_count(kc.updates) + " bound updates",
                 agree ? "exact match" : "MISMATCH"});
      ok &= shape_check(agree, rmat_label(preset, scale) + " t=" +
                                   std::to_string(t) +
                                   ": async k-core equals serial peeling");
    }
    table.rule();
  }

  std::printf("%s\n", table.render().c_str());
  rep.add_table(table);
  if (rep.json_enabled()) rep.section("result").set("ok", ok);
  rep.finish();
  return ok ? 0 : 1;
}