// Table V: "Performance comparison of Semi-External Memory Connected
// Components (CC) on three FLASH memory configurations".
//
// Same harness structure as table4_bfs_sem, for undirected graphs: RMAT-A /
// RMAT-B plus the web-graph stand-ins for the paper's sk-2005 and uk-union
// rows. The baseline-calibration note from table4_bfs_sem.cpp applies (the
// paper's in-memory serial CC sustained roughly 6M traversed edges/second);
// see EXPERIMENTS.md.
//
//   ./table5_cc_sem [--scales=15,16] [--threads=128] [--time-scale=16]
//                   [--cache-fraction=0.65] [--bgl-edge-rate=7.4e6]
//                   [--web-hosts=250] [--inject=eio=0.01,seed=7]
//
// --inject runs every SEM traversal under deterministic transient-fault
// injection (docs/robustness.md); the per-row label comparison then checks
// that the retry policy is invisible to the result.
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "baselines/serial_cc.hpp"
#include "bench_common.hpp"
#include "bench_report.hpp"
#include "core/async_cc.hpp"
#include "gen/webgen.hpp"
#include "graph/graph_io.hpp"
#include "sem/block_cache.hpp"
#include "sem/device_presets.hpp"
#include "sem/fault_injector.hpp"
#include "sem/sem_config.hpp"
#include "sem/sem_csr.hpp"
#include "telemetry/io_recorder.hpp"
#include "telemetry/metrics_json.hpp"

using namespace asyncgt;
using namespace asyncgt::bench;

int main(int argc, char** argv) {
  const options opt(argc, argv);
  const auto scales = opt.get_int_list("scales", {15, 16});
  // Shared traversal flag parser (SEM defaults: per-push delivery +
  // secondary vertex sort; see the flush-batch note in table4_bfs_sem.cpp).
  traversal_options topt = traversal_options::from_flags(opt, true);
  if (!opt.has("threads")) topt.queue.num_threads = 128;
  const double time_scale = opt.get_double("time-scale", 16.0);
  // --cache-fraction flows through the shared parser; calibrated 0.65
  // default when absent (same convention as table4_bfs_sem).
  const double cache_fraction =
      topt.cache_fraction >= 0.0 ? topt.cache_fraction : 0.65;
  const double bgl_edge_rate = opt.get_double("bgl-edge-rate", 7.4e6);
  const auto web_hosts =
      static_cast<std::uint64_t>(opt.get_int("web-hosts", 600));
  const std::string inject_spec = opt.get_string("inject", "");
  std::unique_ptr<sem::fault_injector> injector;
  if (!inject_spec.empty()) {
    injector = std::make_unique<sem::fault_injector>(
        sem::parse_fault_config(inject_spec));
  }
  telemetry::io_recorder io_rec;  // accumulates across all SEM runs

  banner("Semi-External Memory Connected Components", "paper Table V");

  bench_report rep(opt, "table5_cc_sem");

  const auto tmp = std::filesystem::temp_directory_path() / "asyncgt_table5";
  std::filesystem::create_directories(tmp);

  struct workload {
    std::string name;
    csr32 graph;
  };
  std::vector<workload> workloads;
  for (const std::string preset : {std::string("a"), std::string("b")}) {
    for (const auto scale : scales) {
      workloads.push_back(
          {rmat_label(preset, static_cast<unsigned>(scale)) + " und",
           rmat_graph_undirected<vertex32>(
               rmat_preset(preset, static_cast<unsigned>(scale)))});
    }
  }
  webgen_params wp;
  wp.num_hosts = web_hosts;
  wp.isolated_host_fraction = 0.05;
  wp.seed = 21;
  workloads.push_back({"web (sk-2005-like)", webgen_graph<vertex32>(wp)});
  wp.isolated_host_fraction = 0.25;
  wp.seed = 22;
  workloads.push_back({"web (uk-union-like)", webgen_graph<vertex32>(wp)});

  text_table table;
  table.header({"graph", "# verts", "# CCs", "EM size", "device",
                "semN (s)", "cache hit", "evict", "speedup(meas)",
                "speedup(BGL)"});

  bool ok = true;
  std::vector<std::vector<double>> dev_time(3);
  std::vector<double> bgl_speedups_fusion;

  std::size_t wi = 0;
  for (const auto& w : workloads) {
    const csr32& g = w.graph;
    const std::string path = (tmp / (std::to_string(wi++) + ".agt")).string();
    write_graph(path, g);

    cc_result<vertex32> im_r;
    const double t_im = time_seconds([&] { im_r = serial_cc(g); });
    const double t_bgl =
        static_cast<double>(g.num_edges()) / bgl_edge_rate * time_scale;

    const auto devices = sem::all_device_presets(time_scale);
    for (std::size_t d = 0; d < devices.size(); ++d) {
      sem::ssd_model dev(devices[d]);
      // One builder per device row (see table4_bfs_sem.cpp): --io-backend
      // routes every adjacency read, and the per-run label check doubles as
      // the backend acceptance test.
      sem::sem_config scfg = sem::sem_config::from_options(topt, path);
      scfg.with_device(&dev).with_cache_fraction(cache_fraction);
      if (injector != nullptr) {
        scfg.with_fault_injector(injector.get()).with_io_recorder(&io_rec);
      }
      auto bundle = scfg.open<vertex32>();
      sem::sem_csr32& sg = *bundle.graph;

      visitor_queue_config cfg = topt.queue;
      bundle.wire_queue(cfg);
      rep.attach(cfg);
      cc_result<vertex32> sem_r;
      const double t_sem = time_seconds([&] { sem_r = async_cc(sg, cfg); });
      if (bundle.prefetch != nullptr) bundle.prefetch->drain();
      if (sem_r.component != im_r.component) {
        ok &= shape_check(false, w.name + ": SEM CC matches in-memory CC");
      }

      dev_time[d].push_back(t_sem);
      const double sp_bgl = t_bgl / t_sem;
      if (devices[d].name == "fusionio") {
        bgl_speedups_fusion.push_back(sp_bgl);
      }
      const auto cache_c = bundle.cache != nullptr
                               ? bundle.cache->counters()
                               : sem::cache_counters{};
      table.row({w.name, fmt_count(g.num_vertices()),
                 fmt_count(im_r.num_components()),
                 fmt_count(std::filesystem::file_size(path) >> 20) + " MiB",
                 devices[d].name, fmt_seconds(t_sem),
                 fmt_ratio(cache_c.hit_rate()),
                 fmt_count(cache_c.evictions),
                 fmt_ratio(t_im / t_sem), fmt_ratio(sp_bgl)});
    }
    table.rule();
  }

  std::printf("%s\n", table.render().c_str());

  // Per-row device ordering is noisy for CC even in the paper (its Table V
  // has Corsair beating FusionIO on RMAT-B 2^27, and Intel beating FusionIO
  // elsewhere — hence the paper's hedge "typically offers the highest
  // performance"). Gate on the aggregate: the slowest array must be slowest
  // overall; FusionIO-vs-Intel is advisory.
  double sum_time[3] = {0, 0, 0};
  for (std::size_t d = 0; d < 3; ++d) {
    for (const double t : dev_time[d]) sum_time[d] += t;
  }
  ok &= shape_check(sum_time[2] > sum_time[0] && sum_time[2] > sum_time[1],
                    "Corsair (slowest array) is slowest on CC in aggregate");
  shape_check(sum_time[0] <= sum_time[1] * 1.25,
              "FusionIO at least matches Intel on CC in aggregate "
              "(advisory — 'typically' fastest in the paper)");
  double fusion_min = 1e9;
  for (const double s : bgl_speedups_fusion) {
    fusion_min = std::min(fusion_min, s);
  }
  ok &= shape_check(fusion_min > 1.0,
                    "FusionIO SEM CC beats the calibrated in-memory serial "
                    "baseline (paper Table V: speedups 1.3-3.9)");
  if (injector != nullptr) {
    const auto fc = injector->counters();
    const auto io = io_rec.snapshot();
    std::printf("fault injection: %llu injected errors over %llu reads, "
                "%llu retries, %llu gave up\n",
                static_cast<unsigned long long>(fc.errors),
                static_cast<unsigned long long>(fc.ops),
                static_cast<unsigned long long>(io.retries),
                static_cast<unsigned long long>(io.gave_up));
    ok &= shape_check(io.gave_up == 0,
                      "retry policy absorbed every injected transient fault");
    if (rep.json_enabled()) {
      auto& fj = rep.section("faults");
      fj.set("spec", inject_spec);
      fj.set("ops", fc.ops);
      fj.set("errors", fc.errors);
      fj.set("io", telemetry::to_json(io));
    }
  }
  rep.add_table(table);
  if (rep.json_enabled()) rep.section("result").set("ok", ok);
  rep.finish();
  return ok ? 0 : 1;
}