// Incremental recompute over the delta overlay (docs/dynamic_graphs.md) —
// the speedup claim behind the dynamic-graph extension, measured and GATED.
//
// The overlay's promise is that a small edge-delta should cost a small
// repair, not a full traversal. This bench applies a single insert-only
// batch sized at a fraction of the base edge count (default 1%) and runs
// each repair driver (incremental BFS / SSSP / CC) against a full
// recompute over the SAME pinned view:
//
//   1. Bit-identical labels. The repaired arrays must equal the full
//      recompute's, element for element — the repair is only interesting
//      if it is exact.
//   2. The visit gate. repair_visits must stay under --gate (default 0.2)
//      times the full recompute's visits for EVERY algorithm, and the
//      process exits non-zero on a breach — so a regression in the repair
//      planner fails CI, not just a dashboard.
//   3. Accounting sanity. reseeded <= affected <= n per algorithm
//      (tools/check_bench_json.py re-checks this from the JSON artifact,
//      and tools/compare_bench_json.py threshold-watches repair_visits
//      across runs).
//
// The batch is symmetric (CC's repair precondition) and insert-only, which
// also exercises the documented no-reverse-needed path: the base graph
// carries no reverse view, and none of the three submissions may demand
// one. The JSON report's "incremental" section carries the batch shape and
// a per-algorithm {affected, reseeded, repair_visits, full_visits,
// visit_ratio} block.
//
//   ./ext_incremental [--scale=15] [--threads=8] [--fraction=0.01]
//                     [--gate=0.2] [--seed=42] [--json=F] [--trace=F]
#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "bench_report.hpp"
#include "core/incremental.hpp"
#include "gen/rmat.hpp"
#include "gen/update_stream.hpp"
#include "gen/weights.hpp"
#include "graph/delta_overlay.hpp"
#include "service/engine.hpp"

using namespace asyncgt;
using namespace asyncgt::bench;

namespace {

/// One repair-vs-recompute row: labels equal, visit counts, elapsed times.
struct algo_row {
  std::string name;
  bool labels_equal = false;
  incremental_extra extra;
  std::uint64_t full_visits = 0;
  double repair_seconds = 0.0;
  double full_seconds = 0.0;

  double visit_ratio() const {
    return full_visits == 0
               ? 0.0
               : static_cast<double>(extra.repair_visits) /
                     static_cast<double>(full_visits);
  }
};

json_value to_json(const algo_row& r) {
  json_value out = bench::to_json(r.extra);
  out.set("full_visits", r.full_visits);
  out.set("visit_ratio", r.visit_ratio());
  out.set("labels_equal", r.labels_equal);
  out.set("repair_seconds", r.repair_seconds);
  out.set("full_seconds", r.full_seconds);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const options opt(argc, argv);
  const auto scale = static_cast<unsigned>(opt.get_int("scale", 15));
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 42));
  const double fraction = opt.get_double("fraction", 0.01);
  const double gate = opt.get_double("gate", 0.2);
  traversal_options topt = traversal_options::from_flags(opt, true);
  if (!opt.has("threads")) topt.queue.num_threads = 8;

  banner("Incremental repair vs full recompute over the delta overlay",
         "dynamic-graph extension (docs/dynamic_graphs.md)");

  bench_report rep(opt, "ext_incremental");
  rep.attach(topt.queue);

  // Symmetric weighted base: one graph serves all three algorithms (CC
  // needs the symmetry; SSSP the weights; BFS ignores them). Deliberately
  // NO reverse view — an insert-only delta must repair without one.
  //
  // Weights sit in a narrow band ([7, 8], and inserts draw from the same
  // band below): with low relative weight variance a random long-range
  // insert rarely shortens any path, so the delta's true label impact is
  // sparse — the regime the incremental claim is about. Wide-variance
  // weights (the UW scheme's [1, n)) make a 1% insert batch legitimately
  // rewrite most SSSP distances (measured: >99% of labels change), where
  // NO repair strategy can be cheap — that is a different experiment.
  const csr32 uw = add_weights(
      rmat_graph_undirected<vertex32>(rmat_a(scale, seed)),
      weight_scheme::uniform, seed + 1);
  std::vector<std::uint64_t> off(uw.offsets().begin(), uw.offsets().end());
  std::vector<vertex32> tgt(uw.targets().begin(), uw.targets().end());
  std::vector<weight_t> wts(uw.weights().begin(), uw.weights().end());
  for (auto& w : wts) w = 7 + (w - 1) % 2;
  const csr32 base(std::move(off), std::move(tgt), std::move(wts));
  delta_overlay<csr32> ov(base);

  // One insert-only symmetric batch at --fraction of the base edge count.
  // Each symmetric op emits two directed inserts, so the op count halves.
  const auto ops = static_cast<std::size_t>(std::max<double>(
      1.0, fraction * static_cast<double>(base.num_edges()) / 2.0));
  const auto stream = generate_update_stream(
      base, {.seed = seed, .num_batches = 1,
             .batch_size = ops, .delete_fraction = 0.0, .symmetric = true,
             .min_weight = 7, .max_weight = 8});
  const delta_batch<vertex32>& batch = stream.front();

  engine eng({.pool_threads = topt.queue.num_threads, .defaults = topt});

  // Priors over the pristine epoch-0 pin; then the batch lands and every
  // driver repairs its prior against epoch 1.
  auto view0 = ov.snapshot();
  auto prior_bfs = eng.submit_bfs(view0, vertex32{0}, topt).get();
  auto prior_sssp = eng.submit_sssp(view0, vertex32{0}, topt).get();
  auto prior_cc = eng.submit_cc(view0, topt).get();

  ov.apply(batch);
  auto view = ov.snapshot();

  std::vector<algo_row> rows;

  {
    algo_row r{.name = "bfs"};
    wall_timer t;
    auto repaired =
        eng.submit_incremental_bfs(view, batch, std::move(prior_bfs),
                                   &r.extra, topt)
            .get();
    r.repair_seconds = t.elapsed_seconds();
    wall_timer tf;
    auto full_job = eng.submit_bfs(view, vertex32{0}, topt);
    const auto full = full_job.get();
    r.full_seconds = tf.elapsed_seconds();
    r.full_visits = full_job.stats().visits;
    r.labels_equal = repaired.level == full.level;
    rows.push_back(std::move(r));
  }
  {
    algo_row r{.name = "sssp"};
    wall_timer t;
    auto repaired =
        eng.submit_incremental_sssp(view, batch, std::move(prior_sssp),
                                    &r.extra, topt)
            .get();
    r.repair_seconds = t.elapsed_seconds();
    wall_timer tf;
    auto full_job = eng.submit_sssp(view, vertex32{0}, topt);
    const auto full = full_job.get();
    r.full_seconds = tf.elapsed_seconds();
    r.full_visits = full_job.stats().visits;
    r.labels_equal = repaired.dist == full.dist;
    rows.push_back(std::move(r));
  }
  {
    algo_row r{.name = "cc"};
    wall_timer t;
    auto repaired =
        eng.submit_incremental_cc(view, batch, std::move(prior_cc),
                                  &r.extra, topt)
            .get();
    r.repair_seconds = t.elapsed_seconds();
    wall_timer tf;
    auto full_job = eng.submit_cc(view, topt);
    const auto full = full_job.get();
    r.full_seconds = tf.elapsed_seconds();
    r.full_visits = full_job.stats().visits;
    r.labels_equal = repaired.component == full.component;
    rows.push_back(std::move(r));
  }

  bool ok = true;
  text_table table;
  table.header({"algo", "affected", "reseeded", "repair visits",
                "full visits", "ratio", "repair sec", "full sec"});
  for (const auto& r : rows) {
    table.row({r.name, fmt_count(r.extra.affected),
               fmt_count(r.extra.reseeded_vertices),
               fmt_count(r.extra.repair_visits), fmt_count(r.full_visits),
               fmt_ratio(r.visit_ratio()), fmt_seconds(r.repair_seconds),
               fmt_seconds(r.full_seconds)});
    ok &= shape_check(r.labels_equal,
                      r.name + ": repaired labels bit-identical to full "
                              "recompute");
    ok &= shape_check(r.extra.reseeded_vertices <= r.extra.affected &&
                          r.extra.affected <= base.num_vertices(),
                      r.name + ": reseeded <= affected <= n");
    ok &= shape_check(r.full_visits > 0, r.name + ": recompute visited");
    // THE gate: a small delta must cost a small repair.
    ok &= shape_check(
        static_cast<double>(r.extra.repair_visits) <
            gate * static_cast<double>(r.full_visits),
        r.name + ": repair_visits < " + std::to_string(gate) +
            " * full_visits (" + std::to_string(r.extra.repair_visits) +
            " vs " + std::to_string(r.full_visits) + ")");
  }
  std::printf("%s\n", table.render().c_str());

  if (rep.json_enabled()) {
    json_value& s = rep.section("incremental");
    s.set("n", static_cast<std::uint64_t>(base.num_vertices()));
    s.set("base_edges", base.num_edges());
    s.set("delta_inserts",
          static_cast<std::uint64_t>(batch.inserts.size()));
    s.set("delta_deletes",
          static_cast<std::uint64_t>(batch.deletes.size()));
    s.set("epoch", ov.epoch());
    s.set("gate", gate);
    json_value algos = json_value::object();
    for (const auto& r : rows) algos.set(r.name, to_json(r));
    s.set("algos", std::move(algos));
    rep.section("overlay") = [&] {
      const auto c = ov.counters();
      json_value o = json_value::object();
      o.set("live_inserts", c.live_inserts);
      o.set("live_deletes", c.live_deletes);
      o.set("patched_pairs", c.patched_pairs);
      o.set("overlay_bytes", ov.overlay_bytes());
      return o;
    }();
    rep.section("result").set("ok", ok);
  }
  rep.add_table(table);
  rep.finish();
  return ok ? 0 : 1;
}
