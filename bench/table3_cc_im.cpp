// Table III: "Performance comparison of In-Memory Connected Components
// (CC)".
//
// Reproduces the paper's grid: undirected RMAT-A / RMAT-B graphs plus the
// synthetic web graphs standing in for the paper's five crawls (ClueWeb09,
// it-2004, sk-2005, uk-union, webbase-2001), comparing the serial baseline
// (BGL stand-in), synchronous label propagation (MTGL stand-in), BSP
// min-label propagation (PBGL stand-in), and the asynchronous CC at several
// thread counts. The "# CCs" column mirrors the paper's. The paper reports
// async CC 2x faster than MTGL on synthetic and 4-13x on web graphs; shape
// checks here assert the machine-independent content: identical component
// labellings, correct giant-component structure in the web stand-ins, and
// async's zero barriers versus per-iteration barriers in the synchronous
// propagation.
//
//   ./table3_cc_im [--scales=13,14] [--threads=1,16,512] [--web-hosts=400]
#include <string>
#include <vector>

#include "baselines/bsp_cc.hpp"
#include "baselines/serial_cc.hpp"
#include "baselines/syncprop_cc.hpp"
#include "bench_common.hpp"
#include "bench_report.hpp"
#include "core/async_cc.hpp"
#include "core/validate.hpp"
#include "gen/webgen.hpp"

using namespace asyncgt;
using namespace asyncgt::bench;

namespace {

struct workload {
  std::string name;
  csr32 graph;
  bool is_web = false;
};

std::vector<workload> make_workloads(const std::vector<std::int64_t>& scales,
                                     std::uint64_t web_hosts) {
  std::vector<workload> out;
  for (const std::string preset : {std::string("a"), std::string("b")}) {
    for (const auto scale : scales) {
      out.push_back({rmat_label(preset, static_cast<unsigned>(scale)) + " und",
                     rmat_graph_undirected<vertex32>(
                         rmat_preset(preset, static_cast<unsigned>(scale))),
                     false});
    }
  }
  // Web stand-ins with different isolation levels — mirroring the paper's
  // spread from sk-2005 (126 CCs) to ClueWeb09 (3.1M CCs).
  webgen_params dense;
  dense.num_hosts = web_hosts;
  dense.isolated_host_fraction = 0.02;
  dense.seed = 11;
  out.push_back({"web-dense (sk-2005-like)", webgen_graph<vertex32>(dense),
                 true});
  webgen_params sparse;
  sparse.num_hosts = web_hosts;
  sparse.isolated_host_fraction = 0.35;
  sparse.seed = 12;
  out.push_back({"web-fragmented (ClueWeb-like)",
                 webgen_graph<vertex32>(sparse), true});
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const options opt(argc, argv);
  const auto scales = opt.get_int_list("scales", {13, 14});
  const auto threads = opt.get_int_list("threads", {1, 16, 512});
  const auto web_hosts =
      static_cast<std::uint64_t>(opt.get_int("web-hosts", 400));
  const std::size_t bsp_ranks =
      static_cast<std::size_t>(opt.get_int("bsp-ranks", 16));

  banner("In-Memory Connected Components", "paper Table III");

  bench_report rep(opt, "table3_cc_im");

  text_table table;
  {
    std::vector<std::string> hdr{"graph",      "# verts", "# edges",
                                 "# CCs",      "serial (s)", "syncprop (s)",
                                 "iterations", "bsp (s)"};
    for (const auto t : threads) {
      hdr.push_back("async" + std::to_string(t) + " (s)");
    }
    hdr.push_back("updates/vertex");
    table.header(std::move(hdr));
  }

  bool ok = true;
  std::uint64_t dense_ccs = 0, fragmented_ccs = 0;

  for (auto& w : make_workloads(scales, web_hosts)) {
    const csr32& g = w.graph;

    cc_result<vertex32> serial_r;
    const double t_serial = time_seconds([&] { serial_r = serial_cc(g); });

    syncprop_result_extra sp_extra;
    cc_result<vertex32> sp_r;
    const double t_sp =
        time_seconds([&] { sp_r = syncprop_cc(g, 16, &sp_extra); });

    bsp_stats bsp_extra;
    cc_result<vertex32> bsp_r;
    const double t_bsp =
        time_seconds([&] { bsp_r = bsp_cc(g, bsp_ranks, &bsp_extra); });

    std::vector<double> t_async;
    std::vector<cc_result<vertex32>> async_runs;
    for (const auto t : threads) {
      visitor_queue_config cfg;
      cfg.num_threads = static_cast<std::size_t>(t);
      cc_result<vertex32> r;
      t_async.push_back(time_seconds([&] { r = async_cc(g, cfg); }));
      async_runs.push_back(std::move(r));
    }
    // Overhead metrics from the mid thread count (threads ~ cores).
    const cc_result<vertex32>& async_r = async_runs[async_runs.size() / 2];

    const double updates_per_vertex =
        static_cast<double>(async_r.updates) /
        static_cast<double>(g.num_vertices());

    std::vector<std::string> row{w.name, fmt_count(g.num_vertices()),
                                 fmt_count(g.num_edges()),
                                 fmt_count(serial_r.num_components()),
                                 fmt_seconds(t_serial), fmt_seconds(t_sp),
                                 fmt_count(sp_extra.iterations),
                                 fmt_seconds(t_bsp)};
    for (const double t : t_async) row.push_back(fmt_seconds(t));
    row.push_back(fmt_ratio(updates_per_vertex));
    table.row(std::move(row));

    if (w.name.find("dense") != std::string::npos) {
      dense_ccs = serial_r.num_components();
    }
    if (w.name.find("fragmented") != std::string::npos) {
      fragmented_ccs = serial_r.num_components();
    }

    bool async_all_match = true;
    for (const auto& r : async_runs) {
      async_all_match &= (r.component == serial_r.component);
    }
    if (!async_all_match || sp_r.component != serial_r.component ||
        bsp_r.component != serial_r.component) {
      ok &= shape_check(false, w.name + ": all CC variants agree");
    }
    ok &= validate_components(g, async_r.component).ok;
    ok &= shape_check(updates_per_vertex < 4.0,
                      w.name + ": async CC label corrections per vertex "
                               "stay bounded");
    if (w.is_web) {
      ok &= shape_check(
          serial_r.largest_component_size() > g.num_vertices() / 2,
          w.name + ": giant component holds most of the web graph");
    }
  }

  std::printf("%s\n", table.render().c_str());

  ok &= shape_check(fragmented_ccs > 5 * std::max<std::uint64_t>(dense_ccs, 1),
                    "fragmented web graph has far more components than the "
                    "dense one (paper: ClueWeb09 3.1M CCs vs sk-2005 126)");
  rep.add_table(table);
  if (rep.json_enabled()) rep.section("result").set("ok", ok);
  rep.finish();
  return ok ? 0 : 1;
}