// Ablation: graph-structure-dependent parallelism (paper §III-B1, Fig. 2).
//
// "If the graph has multiple shortest-path pathways that can be
// independently traversed, the algorithm will have the opportunity to
// proceed in parallel. However, without the independent pathways, the
// algorithm will traverse the graph in a serialized manner." Figure 2 shows
// the adversarial case: a directed chain.
//
// The available parallelism is visible machine-independently in the queue
// statistics: on a chain at most one visitor is ever in flight (max queue
// length ~1, one wakeup handoff per vertex), while on an RMAT graph the
// queues hold large frontiers. This harness traverses both and reports the
// "parallel slack" the structure exposes.
//
//   ./ablation_parallelism [--scale=13] [--chain=8192] [--threads=16]
#include <string>

#include "bench_common.hpp"
#include "bench_report.hpp"
#include "core/async_bfs.hpp"
#include "gen/grid.hpp"
#include "gen/rmat.hpp"

using namespace asyncgt;
using namespace asyncgt::bench;

int main(int argc, char** argv) {
  const options opt(argc, argv);
  const auto scale = static_cast<unsigned>(opt.get_int("scale", 13));
  const auto chain_n = static_cast<std::uint64_t>(opt.get_int("chain", 8192));
  const auto threads = static_cast<std::size_t>(opt.get_int("threads", 16));

  banner("Graph-structure parallelism ablation (chain vs scale-free)",
         "paper Figure 2 / section III-B1");

  bench_report rep(opt, "ablation_parallelism");

  struct workload {
    std::string name;
    csr32 graph;
    vertex32 start;
  };
  const workload workloads[] = {
      {"chain (Fig. 2 worst case)", chain_graph<vertex32>(chain_n), 0},
      {"grid " + std::to_string(1u << (scale / 2)) + "^2",
       grid_graph<vertex32>(1u << (scale / 2), 1u << (scale / 2)), 0},
      {rmat_label("a", scale), rmat_graph<vertex32>(rmat_a(scale)), 0},
      {rmat_label("b", scale), rmat_graph<vertex32>(rmat_b(scale)), 0},
  };

  text_table table;
  table.header({"graph", "time (s)", "levels", "max queue len",
                "wakeups/vertex", "avail. parallelism"});

  std::uint64_t chain_slack = 0, rmat_slack = 0;
  bool ok = true;
  for (const auto& w : workloads) {
    visitor_queue_config cfg;
    cfg.num_threads = threads;
    bfs_result<vertex32> r;
    const double secs =
        time_seconds([&] { r = async_bfs(w.graph, w.start, cfg); });
    // Available parallelism ~ reached vertices / levels (mean frontier).
    const double levels = static_cast<double>(std::max<dist_t>(
        r.max_level(), 1));
    const double slack = static_cast<double>(r.visited_count()) / levels;
    if (w.name.find("chain") != std::string::npos) {
      chain_slack = r.stats.max_queue_length;
    }
    if (w.name.find("RMAT-A") != std::string::npos) {
      rmat_slack = r.stats.max_queue_length;
    }
    table.row({w.name, fmt_seconds(secs), fmt_count(r.max_level()),
               fmt_count(r.stats.max_queue_length),
               fmt_ratio(static_cast<double>(r.stats.wakeups) /
                         static_cast<double>(r.visited_count())),
               fmt_count(static_cast<std::uint64_t>(slack))});
  }
  std::printf("%s\n", table.render().c_str());

  ok &= shape_check(chain_slack <= 2,
                    "chain exposes no parallelism: at most one visitor "
                    "queued at any time (traversal fully serialized)");
  ok &= shape_check(rmat_slack > 50 * std::max<std::uint64_t>(chain_slack, 1),
                    "scale-free graph exposes orders of magnitude more "
                    "queued work than the chain (paper: 'a significant "
                    "amount of path parallelism exists in these real-world "
                    "graphs')");
  rep.add_table(table);
  if (rep.json_enabled()) rep.section("result").set("ok", ok);
  rep.finish();
  return ok ? 0 : 1;
}