// Shared machine-readable reporting for the bench harnesses and agt_tool.
//
// Every bench binary keeps its human-facing text table and additionally
// accepts:
//   --json FILE               write a schema-2 report (telemetry::report)
//   --trace FILE              write a Chrome trace (chrome://tracing /
//                             ui.perfetto.dev)
//   --sample-interval-us N    sampler period for frontier time-series
//                             (default 2000; active only with --json/--trace
//                             or --stats-dump)
//   --stats-dump N            print a per-interval metrics delta table to
//                             stdout every N sampler ticks while the bench
//                             runs (live introspection; 0 = off). Works
//                             without --json/--trace.
//
// Usage pattern (3-5 lines per bench):
//   bench_report rep(opt, "table4_bfs_sem");
//   rep.attach(cfg);                   // wire telemetry sinks into the run
//   rep.add_row(...); rep.section("sem").set(...);   // whatever fits
//   rep.add_job(bench::to_json(handle.stats()));     // per-job attribution
//   rep.finish();                      // scrape, serialize, write files
//
// finish() automatically appends the scraped metrics registry as the
// "metrics" section and the sampler series as "samples", so benches only
// record what is specific to them. With neither --json, --trace nor
// --stats-dump the whole object is inert: no sampler thread, no trace
// buffers, and the queue's telemetry pointers stay null.
//
// Abort survivability: with --trace, the trace_writer's flush path is set
// up front, so the engine's traversal_aborted containment path can flush
// the partial trace (with its terminal abort marker) before the exception
// propagates; the destructor also best-effort flushes when finish() never
// ran. A bench that dies mid-run still leaves an openable trace.
#pragma once

#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <utility>

#include "core/hybrid_traversal.hpp"
#include "core/incremental.hpp"
#include "queue/queue_stats.hpp"
#include "queue/visitor_queue.hpp"
#include "sem/block_cache.hpp"
#include "sem/block_heat.hpp"
#include "sem/block_pressure.hpp"
#include "sem/prefetcher.hpp"
#include "sem/ssd_model.hpp"
#include "service/engine.hpp"
#include "service/job_stats.hpp"
#include "telemetry/io_recorder.hpp"
#include "telemetry/metrics_json.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/stats_dump.hpp"
#include "telemetry/trace_writer.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace asyncgt::bench {

using telemetry::json_value;

/// Queue counters -> the "queue" metric block of the schema.
inline json_value to_json(const queue_run_stats& s) {
  json_value out = json_value::object();
  out.set("visits", s.visits);
  out.set("pushes", s.pushes);
  out.set("flushes", s.flushes);
  out.set("wakeups", s.wakeups);
  out.set("hot_pops", s.hot_pops);
  out.set("max_queue_length", s.max_queue_length);
  out.set("elapsed_seconds", s.elapsed_seconds);
  out.set("imbalance_cv", s.load_imbalance_cv());
  out.set("queue_visits_min", s.min_queue_visits());
  out.set("queue_visits_max", s.max_queue_visits());
  out.set("num_queues", static_cast<std::uint64_t>(s.visits_per_queue.size()));
  return out;
}

inline json_value to_json(const sem::cache_counters& c) {
  json_value out = json_value::object();
  out.set("hits", c.hits);
  out.set("misses", c.misses);
  out.set("evictions", c.evictions);
  out.set("hit_rate", c.hit_rate());
  out.set("policy_rejects", c.policy_rejects);
  out.set("prefetch_installs", c.prefetch_installs);
  out.set("prefetch_wasted", c.prefetch_wasted);
  return out;
}

/// Pending-visitor pressure totals -> the "pressure" block of the sem
/// section (check_bench_json validates increments >= decrements and the
/// pending consistency).
inline json_value to_json(const sem::block_pressure& p) {
  json_value out = json_value::object();
  out.set("block_bytes", p.block_bytes());
  out.set("num_blocks", p.num_blocks());
  out.set("increments", p.total_increments());
  out.set("decrements", p.total_decrements());
  out.set("pending", p.total_pending());
  out.set("out_of_range", p.out_of_range());
  return out;
}

/// Readahead-lane counters -> the "prefetch" block of the sem section
/// (issued/wasted are the docs/observability.md metrics; wasted lives on
/// the cache side, where evictions of un-hit installs are observed).
inline json_value to_json(const sem::prefetcher::counters& c,
                          const sem::cache_counters& cache) {
  json_value out = json_value::object();
  out.set("requested", c.requested);
  out.set("issued", c.issued);
  out.set("dropped", c.dropped);
  out.set("stale", c.stale);
  out.set("wasted", cache.prefetch_wasted);
  return out;
}

inline json_value to_json(const sem::ssd_counters& c) {
  json_value out = json_value::object();
  out.set("reads", c.reads);
  out.set("writes", c.writes);
  out.set("read_bytes", c.read_bytes);
  out.set("write_bytes", c.write_bytes);
  out.set("read_blocks", c.read_blocks);
  out.set("max_inflight", c.max_inflight);
  return out;
}

/// A hybrid run's direction breakdown -> a "hybrid" block: switch count,
/// total inspections, and one {direction, depth, edge_inspections, frontier}
/// object per phase (check_bench_json validates the per-phase shape;
/// compare_bench_json watches the edge_inspections keys).
inline json_value to_json(const hybrid_extra& e) {
  json_value out = json_value::object();
  out.set("direction_switches", e.direction_switches);
  out.set("edge_inspections", e.edge_inspections);
  json_value phases = json_value::array();
  for (const hybrid_phase& p : e.phases) {
    json_value pj = json_value::object();
    pj.set("direction", p.direction);
    pj.set("depth", p.depth);
    pj.set("edge_inspections", p.edge_inspections);
    pj.set("frontier", p.frontier);
    phases.push(std::move(pj));
  }
  out.set("phases", std::move(phases));
  return out;
}

/// One incremental repair's accounting -> the core of an "incremental"
/// section (check_bench_json enforces reseeded <= affected <= n;
/// compare_bench_json threshold-watches every repair_visits key).
inline json_value to_json(const incremental_extra& e) {
  json_value out = json_value::object();
  out.set("affected", e.affected);
  out.set("reseeded", e.reseeded_vertices);
  out.set("repair_visits", e.repair_visits);
  return out;
}

/// One job's attribution snapshot -> a "jobs" array entry (schema v3: the
/// legacy boolean terminal flags plus the precise `outcome` name and the
/// deadline the job ran under).
inline json_value to_json(const service::job_stats& s) {
  json_value out = json_value::object();
  out.set("job_id", s.job_id);
  out.set("label", s.label);
  out.set("completed", s.completed);
  out.set("failed", s.failed);
  out.set("cancelled", s.cancelled);
  out.set("outcome", s.outcome);
  out.set("deadline_ms", static_cast<std::uint64_t>(s.deadline_ms));
  out.set("priority", static_cast<std::int64_t>(s.priority));
  out.set("delta_epoch", s.delta_epoch);
  out.set("visits", s.visits);
  out.set("pushes", s.pushes);
  out.set("flushes", s.flushes);
  out.set("wakeups", s.wakeups);
  out.set("edge_inspections", s.edge_inspections);
  out.set("io_ops", s.io_ops);
  out.set("io_bytes", s.io_bytes);
  out.set("io_retries", s.io_retries);
  out.set("queue_wait_seconds", s.queue_wait_seconds);
  out.set("run_seconds", s.run_seconds);
  out.set("total_seconds", s.total_seconds);
  return out;
}

/// Engine admission/outcome counters -> the "service" section (schema v3).
/// check_bench_json.py verifies the conservation invariant over these:
/// submitted == rejected + active + every terminal outcome.
inline json_value to_json(const asyncgt::engine::service_counters& c) {
  json_value out = json_value::object();
  out.set("submitted", c.submitted);
  out.set("admitted", c.admitted);
  out.set("rejected", c.rejected);
  out.set("shed_requests", c.shed_requests);
  out.set("active", c.active);
  out.set("completed", c.completed);
  out.set("failed", c.failed);
  out.set("cancelled", c.cancelled);
  out.set("deadline_exceeded", c.deadline_exceeded);
  out.set("stalled", c.stalled);
  out.set("shed", c.shed);
  out.set("memory_committed_bytes", c.memory_committed_bytes);
  return out;
}

/// Block-heat summary with a hottest-first top-K table (schema v2
/// "block_heat" section).
inline json_value to_json(const sem::block_heat& heat, std::size_t top_k) {
  json_value out = json_value::object();
  out.set("block_bytes", heat.block_bytes());
  out.set("num_blocks", heat.num_blocks());
  out.set("blocks_touched", heat.blocks_touched());
  out.set("total_accesses", heat.total_accesses());
  out.set("total_misses", heat.total_misses());
  out.set("out_of_range", heat.out_of_range());
  json_value top = json_value::array();
  for (const auto& e : heat.top_k(top_k)) {
    json_value row = json_value::object();
    row.set("block", e.block);
    row.set("accesses", e.accesses);
    row.set("misses", e.misses);
    top.push(std::move(row));
  }
  out.set("top", std::move(top));
  return out;
}

class bench_report {
 public:
  bench_report(const options& opt, std::string name)
      : report_(std::move(name)),
        json_path_(opt.get_string("json", "")),
        trace_path_(opt.get_string("trace", "")),
        sample_interval_us_(
            static_cast<std::uint64_t>(opt.get_int("sample-interval-us", 2000))),
        stats_dump_every_(
            static_cast<std::uint64_t>(opt.get_int("stats-dump", 0))) {
    // Reproduce the full command line in the config block so a BENCH_*.json
    // is self-describing.
    for (const auto& key : opt.keys()) {
      report_.config(key, opt.get_string(key, ""));
    }
    if (trace_enabled()) {
      trace_ = std::make_unique<telemetry::trace_writer>();
      // Registered up front so abort-containment (and our destructor) can
      // flush a partial trace even when finish() never runs.
      trace_->set_flush_path(trace_path_);
    }
  }

  ~bench_report() {
    sampler_.stop();
    if (trace_ && !finished_) (void)trace_->flush();
  }

  bool json_enabled() const noexcept { return !json_path_.empty(); }
  bool trace_enabled() const noexcept { return !trace_path_.empty(); }
  bool enabled() const noexcept {
    return json_enabled() || trace_enabled() || stats_dump_every_ > 0;
  }

  telemetry::metrics_registry& metrics() noexcept { return registry_; }
  telemetry::sampler& sampler() noexcept { return sampler_; }
  /// Null unless --trace was given.
  telemetry::trace_writer* trace() noexcept { return trace_.get(); }

  /// Wires the telemetry sinks into a queue config (and starts the sampler
  /// on first use). No-op without --json/--trace, so benches can call this
  /// unconditionally and keep the zero-overhead default.
  void attach(visitor_queue_config& cfg) {
    if (!enabled()) return;
    cfg.metrics = &registry_;
    cfg.trace = trace_.get();
    cfg.sampler = &sampler_;
    if (stats_dump_every_ > 0 && !dumper_) {
      dumper_ = std::make_unique<telemetry::stats_dumper>(&registry_);
      // Runs on the sampler thread; the dumper serializes internally.
      sampler_.set_tick_hook([this](double t_seconds) {
        if (++ticks_ % stats_dump_every_ == 0) {
          dumper_->dump(std::cout, t_seconds);
        }
      });
    }
    if (!sampler_.running()) {
      sampler_.start(std::chrono::microseconds(sample_interval_us_));
    }
  }

  /// Direct access to the underlying schema-1 document builder.
  telemetry::report& json() noexcept { return report_; }
  json_value& section(const std::string& name) {
    return report_.section(name);
  }
  bench_report& config(const std::string& key, json_value v) {
    report_.config(key, std::move(v));
    return *this;
  }
  bench_report& add_row(json_value row) {
    report_.add_row(std::move(row));
    return *this;
  }
  /// Appends one entry to the top-level "jobs" array (schema v2).
  bench_report& add_job(json_value job) {
    report_.add_job(std::move(job));
    return *this;
  }

  /// Re-emits a rendered text_table as report rows, one object per data row
  /// keyed by the header cells — the bench's human table and its JSON stay
  /// in lockstep by construction.
  bench_report& add_table(const text_table& table) {
    if (!json_enabled()) return *this;
    const auto header = table.header_cells();
    for (const auto& cells : table.data_rows()) {
      json_value row = json_value::object();
      for (std::size_t c = 0; c < cells.size() && c < header.size(); ++c) {
        row.set(header[c], cells[c]);
      }
      report_.add_row(std::move(row));
    }
    return *this;
  }

  /// Stops the sampler, folds registry + samples into the document, and
  /// writes the requested files. Prints one line per artifact. Safe to call
  /// when disabled (does nothing).
  void finish() {
    sampler_.stop();
    finished_ = true;
    if (!enabled()) return;
    if (json_enabled()) {
      const auto snap = registry_.scrape();
      if (!snap.entries.empty()) {
        section("metrics") = telemetry::to_json(snap);
      }
      const auto series = sampler_.snapshot();
      if (!series.empty()) {
        json_value& s = section("samples");
        s = telemetry::to_json(series);
        s.set("interval_us", sample_interval_us_);
      }
      report_.write_file(json_path_);
      std::printf("wrote JSON report: %s\n", json_path_.c_str());
    }
    if (trace_enabled()) {
      sampler_.write_counters(*trace_);
      trace_->write_file(trace_path_);
      std::printf("wrote Chrome trace: %s (open in chrome://tracing or "
                  "ui.perfetto.dev)\n",
                  trace_path_.c_str());
    }
  }

 private:
  telemetry::report report_;
  telemetry::metrics_registry registry_{64};
  telemetry::sampler sampler_;
  std::unique_ptr<telemetry::trace_writer> trace_;
  std::unique_ptr<telemetry::stats_dumper> dumper_;
  std::uint64_t ticks_ = 0;  // sampler-thread only (tick hook)
  std::string json_path_;
  std::string trace_path_;
  std::uint64_t sample_interval_us_;
  std::uint64_t stats_dump_every_;
  bool finished_ = false;
};

}  // namespace asyncgt::bench
