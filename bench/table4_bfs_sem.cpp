// Table IV: "Performance comparison of Semi-External Memory Breadth First
// Search (BFS) on three FLASH memory configurations".
//
// Builds the RMAT graphs as on-disk .agt files, traverses them with the
// asynchronous BFS over sem_csr storage at --threads oversubscribed threads on
// each simulated device (FusionIO / Intel / Corsair), and compares against
// the in-memory serial baseline — the paper's "Speedup IM BGL" column.
//
// Calibration note (documented substitution, see EXPERIMENTS.md): the
// paper's testbed is simulated end-to-end on a slowed clock. The device
// models keep the paper's IOPS in *simulated* seconds; --time-scale
// stretches every simulated latency so that device service time dominates
// this host's CPU-side costs (our scaled-down graphs fit in cache and the
// CPU work per edge is negligible next to 2010 hardware — without the
// stretch every device would finish at host-CPU speed and the devices would
// be indistinguishable). The in-memory serial baseline is calibrated on the
// same clock: the paper's BGL rows imply ~7.4 M traversed edges/second
// (Table I, RMAT-A 2^27: 2^31 edges / 292 s), so
//   t_BGL = edges_touched / --bgl-edge-rate * --time-scale.
// The table reports speedup against both that calibrated baseline (the
// paper's "Speedup IM BGL" column) and the raw measured serial time on this
// host (expected << 1 at these scales — modern cached traversal is fast).
// Shape checks assert the hardware-independent claims: oversubscription
// gain, device ordering, and the calibrated speedup landing in the paper's
// band (Corsair ~0.7-2.1x, FusionIO ~1.7-3.0x).
//
//   ./table4_bfs_sem [--scales=15,16] [--threads=128] [--time-scale=16]
//                    [--cache-fraction=0.65] [--bgl-edge-rate=7.4e6]
//                    [--flush-batch=1] [--inject=eio=0.01,seed=7]
//
// --inject threads a deterministic fault injector through every SEM read
// (docs/robustness.md): the correctness check then doubles as the
// fault-tolerance acceptance test — injected transient faults must not
// change a single BFS label, only add io.retries to the report.
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "baselines/serial_bfs.hpp"
#include "bench_common.hpp"
#include "bench_report.hpp"
#include "core/async_bfs.hpp"
#include "gen/weights.hpp"
#include "graph/graph_io.hpp"
#include "sem/block_cache.hpp"
#include "sem/device_presets.hpp"
#include "sem/fault_injector.hpp"
#include "sem/sem_config.hpp"
#include "sem/sem_csr.hpp"
#include "telemetry/io_recorder.hpp"
#include "telemetry/metrics_json.hpp"

using namespace asyncgt;
using namespace asyncgt::bench;

namespace {

vertex32 pick_start(const csr32& g) {
  vertex32 best = 0;
  for (vertex32 v = 1; v < g.num_vertices(); ++v) {
    if (g.out_degree(v) > g.out_degree(best)) best = v;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const options opt(argc, argv);
  const auto scales = opt.get_int_list("scales", {15, 16});
  // Shared traversal flag parser (threads / flush-batch / retries /
  // backoff, SEM defaults: per-push delivery + secondary vertex sort — see
  // service/traversal_options.hpp and docs/tuning.md); this bench
  // oversubscribes harder than the parser's default thread count.
  traversal_options topt = traversal_options::from_flags(opt, true);
  if (!opt.has("threads")) topt.queue.num_threads = 128;
  const std::size_t sem_threads = topt.queue.num_threads;
  const double time_scale = opt.get_double("time-scale", 16.0);
  // --cache-fraction flows through the shared parser now; this table keeps
  // its calibrated 0.65 default when the flag is absent.
  const double cache_fraction =
      topt.cache_fraction >= 0.0 ? topt.cache_fraction : 0.65;
  const double bgl_edge_rate = opt.get_double("bgl-edge-rate", 7.4e6);
  const std::string inject_spec = opt.get_string("inject", "");
  std::unique_ptr<sem::fault_injector> injector;
  if (!inject_spec.empty()) {
    injector = std::make_unique<sem::fault_injector>(
        sem::parse_fault_config(inject_spec));
  }
  telemetry::io_recorder io_rec;  // accumulates across all SEM runs

  banner("Semi-External Memory Breadth First Search", "paper Table IV");

  bench_report rep(opt, "table4_bfs_sem");

  const auto tmp = std::filesystem::temp_directory_path() / "asyncgt_table4";
  std::filesystem::create_directories(tmp);

  text_table table;
  table.header({"graph", "EM size", "device",
                "semN (s) N=" + std::to_string(sem_threads), "sem1 (s)",
                "IOPS seen", "cache hit", "evict", "speedup(meas)",
                "speedup(BGL)"});

  bool ok = true;
  // speed[device] -> list over graphs of sem time, for ordering checks.
  std::vector<std::vector<double>> dev_time(3);
  std::vector<double> overs_gain;
  std::vector<double> bgl_speedups_fusion, bgl_speedups_corsair;

  for (const std::string preset : {std::string("a"), std::string("b")}) {
    for (const auto scale : scales) {
      const csr32 g = rmat_graph<vertex32>(
          rmat_preset(preset, static_cast<unsigned>(scale)));
      const vertex32 start = pick_start(g);
      const std::string path =
          (tmp / (preset + std::to_string(scale) + ".agt")).string();
      write_graph(path, g);

      bfs_result<vertex32> im_r;
      const double t_im = time_seconds([&] { im_r = serial_bfs(g, start); });
      // Calibrated 2010-hardware serial baseline on the same simulated
      // clock as the devices: edges touched / rate, stretched by the
      // time-scale factor.
      const double t_bgl =
          static_cast<double>(g.num_edges()) *
          (static_cast<double>(im_r.visited_count()) /
           static_cast<double>(g.num_vertices())) /
          bgl_edge_rate * time_scale;

      const auto devices = sem::all_device_presets(time_scale);
      for (std::size_t d = 0; d < devices.size(); ++d) {
        sem::ssd_model dev(devices[d]);
        // One builder per device row: backend (--io-backend routes every
        // adjacency read, docs/io_backends.md — labels must stay identical
        // to the sync default, so the per-run correctness check doubles as
        // the backend acceptance test), cache + policy, retries, and the
        // hot-block knobs all arrive through the shared parser.
        sem::sem_config scfg = sem::sem_config::from_options(topt, path);
        scfg.with_device(&dev).with_cache_fraction(cache_fraction);
        if (injector != nullptr) {
          scfg.with_fault_injector(injector.get()).with_io_recorder(&io_rec);
        }
        auto bundle = scfg.open<vertex32>();
        sem::sem_csr32& sg = *bundle.graph;

        visitor_queue_config cfg = topt.queue;
        bundle.wire_queue(cfg);
        rep.attach(cfg);
        bfs_result<vertex32> sem_r;
        const double t_sem =
            time_seconds([&] { sem_r = async_bfs(sg, start, cfg); });
        if (bundle.prefetch != nullptr) bundle.prefetch->drain();
        if (sem_r.level != im_r.level) {
          ok &= shape_check(false, "SEM BFS matches in-memory BFS");
        }
        const double iops =
            static_cast<double>(dev.counters().reads) / std::max(t_sem, 1e-9);
        const auto cache_c = bundle.cache != nullptr
                                 ? bundle.cache->counters()
                                 : sem::cache_counters{};
        const double hit_rate = cache_c.hit_rate();

        // Single-thread SEM run (fresh cache) to expose the latency-hiding
        // gain of oversubscription. Only on the fastest device at the
        // smallest scale — single-threaded runs pay full unhidden latency
        // and would dominate the bench runtime elsewhere.
        double t_sem1 = -1.0;
        if (scale == scales.front() && devices[d].name == "fusionio") {
          sem::ssd_model dev1(devices[d]);
          sem::sem_config scfg1 = scfg;
          auto bundle1 = scfg1.with_device(&dev1).open<vertex32>();
          visitor_queue_config cfg1 = cfg;
          bundle1.wire_queue(cfg1);
          cfg1.num_threads = 1;
          t_sem1 = time_seconds([&] { async_bfs(*bundle1.graph, start, cfg1); });
          overs_gain.push_back(t_sem1 / t_sem);
        }

        dev_time[d].push_back(t_sem);
        const double sp_bgl = t_bgl / t_sem;
        if (devices[d].name == "fusionio") {
          bgl_speedups_fusion.push_back(sp_bgl);
        }
        if (devices[d].name == "corsair") {
          bgl_speedups_corsair.push_back(sp_bgl);
        }
        table.row({rmat_label(preset, static_cast<unsigned>(scale)),
                   fmt_count(std::filesystem::file_size(path) >> 20) + " MiB",
                   devices[d].name, fmt_seconds(t_sem), fmt_seconds(t_sem1),
                   fmt_count(static_cast<std::uint64_t>(iops)),
                   fmt_ratio(hit_rate), fmt_count(cache_c.evictions),
                   fmt_ratio(t_im / t_sem), fmt_ratio(sp_bgl)});
      }
      table.rule();
    }
  }

  std::printf("%s\n", table.render().c_str());

  // Latency hiding: 256 threads beat 1 thread by a large factor on every
  // device (the mechanism behind the whole SEM result).
  double min_gain = 1e9;
  for (const double gain : overs_gain) min_gain = std::min(min_gain, gain);
  ok &= shape_check(min_gain > 3.0,
                    "thread oversubscription hides I/O latency (>=3x gain "
                    "over single-thread SEM)");
  // Device ordering on every graph: fusionio <= intel <= corsair time.
  bool ordering = true;
  for (std::size_t i = 0; i < dev_time[0].size(); ++i) {
    ordering &= dev_time[0][i] <= dev_time[1][i] * 1.25;  // jitter slack
    ordering &= dev_time[1][i] <= dev_time[2][i] * 1.25;
  }
  ok &= shape_check(ordering,
                    "device ranking holds: FusionIO fastest, Corsair "
                    "slowest (paper: 'the FusionIO drive ... typically "
                    "outperforms other SSDs')");
  // Calibrated comparison lands in the paper's band.
  double fusion_min = 1e9, corsair_min = 1e9;
  for (const double s : bgl_speedups_fusion) {
    fusion_min = std::min(fusion_min, s);
  }
  for (const double s : bgl_speedups_corsair) {
    corsair_min = std::min(corsair_min, s);
  }
  ok &= shape_check(fusion_min > 1.0,
                    "FusionIO SEM beats the calibrated in-memory serial "
                    "baseline (paper Table IV: speedups 1.7-3.0)");
  ok &= shape_check(corsair_min > 0.4,
                    "even the slowest SSD stays comparable to the "
                    "calibrated baseline (paper: 0.7-2.1)");
  if (injector != nullptr) {
    // Fault-tolerance acceptance: every per-run label check above already
    // ran under injection, so here only the retry accounting remains.
    const auto fc = injector->counters();
    const auto io = io_rec.snapshot();
    std::printf("fault injection: %llu injected errors over %llu reads, "
                "%llu retries, %llu gave up\n",
                static_cast<unsigned long long>(fc.errors),
                static_cast<unsigned long long>(fc.ops),
                static_cast<unsigned long long>(io.retries),
                static_cast<unsigned long long>(io.gave_up));
    ok &= shape_check(io.gave_up == 0,
                      "retry policy absorbed every injected transient fault");
    if (rep.json_enabled()) {
      auto& fj = rep.section("faults");
      fj.set("spec", inject_spec);
      fj.set("ops", fc.ops);
      fj.set("errors", fc.errors);
      fj.set("io", telemetry::to_json(io));
    }
  }
  rep.add_table(table);
  if (rep.json_enabled()) rep.section("result").set("ok", ok);
  rep.finish();
  return ok ? 0 : 1;
}