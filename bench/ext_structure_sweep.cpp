// Extension bench: how graph structure drives the async-vs-synchronous
// trade (the paper's related-work claims, §VI-A):
//
//   "This approach works well when the graph exhibits nice load balancing
//    properties (regular or uniformly random) but suffers from significant
//    load imbalance when processing power-law graphs."
//
// The sweep runs BFS and CC over four structural families — Erdős–Rényi
// (uniform), Watts–Strogatz (small world, no skew), Barabási–Albert
// (power law), RMAT-B (heavy power law) — and reports, per family:
//   * the BSP (distributed stand-in) per-superstep inbox imbalance,
//   * the async visitor queue's load CV (hash routing evens out the skew),
//   * degree skew statistics tying the two together,
//   * direction-optimizing BFS edge inspections vs the plain level count
//     (the later-literature comparator: dobfs also exploits the skew).
//
// Shape checks: distributed imbalance grows monotonically with skew while
// async queue balance stays flat — the paper's argument for asynchrony.
//
// The sweep then pits the engine's own frontier-adaptive hybrid traversal
// (core/hybrid_traversal.hpp, --hybrid on agt_tool) against the pure-async
// run on an undirected RMAT-A instance: identical labels, and the hybrid's
// bottom-up middle levels must inspect at least 2x fewer edges than the
// async run pushes — the headline number the JSON report carries under
// "hybrid" (per-phase breakdown included; compare_bench_json watches the
// edge_inspections keys).
//
//   ./ext_structure_sweep [--vertices=16384] [--threads=16]
//                         [--hybrid-scale=S]  (default: log2(--vertices))
#include <string>
#include <vector>

#include "baselines/bsp_bfs.hpp"
#include "baselines/dobfs.hpp"
#include "baselines/serial_bfs.hpp"
#include "bench_common.hpp"
#include "bench_report.hpp"
#include "core/async_bfs.hpp"
#include "core/async_cc.hpp"
#include "core/hybrid_traversal.hpp"
#include "gen/random_graphs.hpp"
#include "gen/rmat.hpp"
#include "graph/graph_stats.hpp"

using namespace asyncgt;
using namespace asyncgt::bench;

int main(int argc, char** argv) {
  const options opt(argc, argv);
  const auto n = static_cast<std::uint64_t>(opt.get_int("vertices", 16384));
  const auto threads = static_cast<std::size_t>(opt.get_int("threads", 16));

  banner("Extension: graph-structure sweep (uniform -> power law)",
         "paper section VI-A's load-balance argument");

  bench_report rep(opt, "ext_structure_sweep");

  struct family {
    std::string name;
    csr32 graph;
  };
  const unsigned scale = [&] {
    unsigned s = 0;
    while ((1ULL << (s + 1)) <= n) ++s;
    return s;
  }();
  std::vector<family> families;
  families.push_back(
      {"erdos-renyi (uniform)", erdos_renyi_graph<vertex32>(n, 8 * n, 1)});
  families.push_back({"watts-strogatz (small world)",
                      watts_strogatz_graph<vertex32>(n, 16, 0.1, 2)});
  families.push_back({"barabasi-albert (power law)",
                      barabasi_albert_graph<vertex32>(n, 8, 3)});
  families.push_back(
      {"rmat-b (heavy power law)",
       rmat_graph_undirected<vertex32>(rmat_b(scale))});

  text_table table;
  table.header({"family", "# edges", "degree CV", "top-1% edges",
                "bsp max inbox", "async queue CV", "async bfs (s)",
                "dobfs edges/|E|"});

  bool ok = true;
  std::vector<double> degree_cv, bsp_imbalance, async_cv;

  for (const auto& f : families) {
    const csr32& g = f.graph;
    const auto deg = compute_degree_summary(g);

    bsp_stats bstats;
    const auto bsp_r = bsp_bfs(g, vertex32{0}, 16, &bstats);
    // Normalized worst-superstep inbox: fraction of all messages that hit
    // one rank in one superstep.
    const double inbox_share =
        static_cast<double>(bstats.max_inbox) /
        std::max<double>(1.0, static_cast<double>(bstats.total_messages));

    visitor_queue_config cfg;
    cfg.num_threads = threads;
    bfs_result<vertex32> async_r;
    const double t_async =
        time_seconds([&] { async_r = async_bfs(g, vertex32{0}, cfg); });
    if (async_r.level != bsp_r.level) {
      ok &= shape_check(false, f.name + ": BFS variants agree");
    }

    dobfs_extra dextra;
    const auto do_r = dobfs(g, vertex32{0}, &dextra);
    if (do_r.level != async_r.level) {
      ok &= shape_check(false, f.name + ": dobfs agrees");
    }

    // CC for the queue-balance metric (seeded everywhere = steady load).
    const auto cc_r = async_cc(g, cfg);

    degree_cv.push_back(deg.stats.cv());
    bsp_imbalance.push_back(inbox_share);
    async_cv.push_back(cc_r.stats.load_imbalance_cv());

    table.row({f.name, fmt_count(g.num_edges()), fmt_ratio(deg.stats.cv()),
               fmt_ratio(deg.top_fraction_edge_share),
               fmt_ratio(inbox_share),
               fmt_ratio(cc_r.stats.load_imbalance_cv()),
               fmt_seconds(t_async),
               fmt_ratio(static_cast<double>(dextra.edges_inspected) /
                         static_cast<double>(g.num_edges()))});
  }
  std::printf("%s\n", table.render().c_str());

  ok &= shape_check(degree_cv.back() > 2.0 * degree_cv.front(),
                    "power-law families are far more degree-skewed than "
                    "uniform ones (workload sanity)");
  ok &= shape_check(
      async_cv.back() < 0.6,
      "async hash-routed queues stay balanced even on the most skewed "
      "family (paper III-A: hubs spread uniformly across queues)");
  // The async queue balance degrades far less than degree skew grows.
  ok &= shape_check(async_cv.back() < degree_cv.back() / 2.0,
                    "queue-load CV stays well below the degree CV on "
                    "power-law graphs (the hash absorbs the skew)");

  // ---- Frontier-adaptive hybrid vs pure-async, undirected RMAT-A ----
  // Undirected so every vertex is reachable: on a directed RMAT the many
  // in-degree-0 / unreachable vertices would scan their in-edges every
  // bottom-up sweep without ever claiming, poisoning the comparison.
  {
    const auto hscale =
        static_cast<unsigned>(opt.get_int("hybrid-scale", scale));
    const csr32 hg = [&] {
      csr32 g = rmat_graph_undirected<vertex32>(rmat_a(hscale, 42));
      g.ensure_reverse();
      return g;
    }();

    visitor_queue_config cfg;
    cfg.num_threads = threads;
    bfs_result<vertex32> plain;
    const double t_plain =
        time_seconds([&] { plain = async_bfs(hg, vertex32{0}, cfg); });
    // Pure-async inspections: every push traverses exactly one edge.
    const std::uint64_t plain_inspected = plain.stats.pushes;

    traversal_options topt(cfg);
    topt.hybrid = true;
    topt.hybrid_alpha = opt.get_double("hybrid-alpha", topt.hybrid_alpha);
    topt.hybrid_beta = opt.get_double("hybrid-beta", topt.hybrid_beta);
    bfs_result<vertex32> hyb;
    hybrid_extra hex;
    const double t_hyb =
        time_seconds([&] { hyb = hybrid_bfs(hg, vertex32{0}, topt, &hex); });

    ok &= shape_check(hyb.level == plain.level,
                      "hybrid BFS labels are bit-identical to pure-async");
    ok &= shape_check(
        2 * hex.edge_inspections <= plain_inspected,
        "hybrid BFS inspects at least 2x fewer edges than pure-async "
        "pushes on RMAT-A (the bottom-up sweeps earn their keep)");

    // CC comparison, reported but not gated: the Jacobi sweeps pay m per
    // pass, so the inspection trade depends on how fast labels converge.
    const auto cc_plain = async_cc(hg, cfg);
    hybrid_extra cex;
    const auto cc_hyb = hybrid_cc(hg, topt, &cex);
    ok &= shape_check(cc_hyb.component == cc_plain.component,
                      "hybrid CC labels are bit-identical to pure-async");

    const double ratio =
        static_cast<double>(plain_inspected) /
        std::max<double>(1.0, static_cast<double>(hex.edge_inspections));
    text_table htable;
    htable.header({"traversal", "edges inspected", "vs async", "switches",
                   "time (s)"});
    htable.row({"async bfs", fmt_count(plain_inspected), "1.00", "0",
                fmt_seconds(t_plain)});
    htable.row({"hybrid bfs", fmt_count(hex.edge_inspections),
                fmt_ratio(1.0 / ratio), fmt_count(hex.direction_switches),
                fmt_seconds(t_hyb)});
    htable.row({"async cc", fmt_count(cc_plain.stats.pushes), "1.00", "0",
                ""});
    htable.row({"hybrid cc", fmt_count(cex.edge_inspections),
                fmt_ratio(static_cast<double>(cex.edge_inspections) /
                          std::max<double>(
                              1.0, static_cast<double>(cc_plain.stats.pushes))),
                fmt_count(cex.direction_switches), ""});
    std::printf("RMAT-A scale %u (%s edges): hybrid inspects %.2fx fewer "
                "edges than async pushes\n%s\n",
                hscale, fmt_count(hg.num_edges()).c_str(), ratio,
                htable.render().c_str());
    rep.add_table(htable);

    if (rep.json_enabled()) {
      json_value& h = rep.section("hybrid");
      h.set("scale", static_cast<std::uint64_t>(hscale));
      h.set("edges", hg.num_edges());
      h.set("plain_edge_inspections", plain_inspected);
      h.set("edge_inspections", hex.edge_inspections);
      h.set("inspection_ratio", ratio);
      h.set("bfs", bench::to_json(hex));
      json_value cj = bench::to_json(cex);
      cj.set("plain_edge_inspections", cc_plain.stats.pushes);
      h.set("cc", std::move(cj));
    }
  }

  rep.add_table(table);
  if (rep.json_enabled()) rep.section("result").set("ok", ok);
  rep.finish();
  return ok ? 0 : 1;
}