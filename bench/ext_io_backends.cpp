// Extension: pluggable SEM I/O backend sweep (docs/io_backends.md).
//
// The paper's SEM result comes from thread oversubscription turning blocking
// preads into device concurrency; the io_backend layer adds the complementary
// lever — batching — and this harness measures what it buys. It sweeps
// backend x threads x batch depth over the same semi-external BFS, reporting
// wall time, syscall batches, and bytes-per-syscall, and asserts the two
// claims the layer is built on:
//
//   1. identity: every backend produces bit-identical BFS labels — batching
//      is a transport optimization, never a semantic one;
//   2. coalescing: at equal thread count, the coalescing backend issues at
//      least 4x fewer syscalls than sync (the semi-sorted visit order makes
//      consecutive adjacency reads adjacent on disk, so the readahead
//      window converts them into memcpys).
//
// The uring backend joins the sweep automatically when compiled in
// (-DASYNCGT_WITH_URING) and the host allows io_uring_setup.
//
//   ./ext_io_backends [--scale=15] [--threads=16,64] [--batches=4,16,64]
//                     [--time-scale=0.05] [--cache-fraction=0.5] [--json F]
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "baselines/serial_bfs.hpp"
#include "bench_common.hpp"
#include "bench_report.hpp"
#include "core/async_bfs.hpp"
#include "graph/graph_io.hpp"
#include "sem/block_cache.hpp"
#include "sem/device_presets.hpp"
#include "sem/io_backend.hpp"
#include "sem/sem_config.hpp"
#include "sem/sem_csr.hpp"

using namespace asyncgt;
using namespace asyncgt::bench;
using telemetry::json_value;

namespace {

struct run_result {
  double seconds = 0.0;
  sem::io_backend_counters io;
  bool labels_ok = false;
};

}  // namespace

int main(int argc, char** argv) {
  const options opt(argc, argv);
  const auto scale = static_cast<unsigned>(opt.get_int("scale", 15));
  const auto thread_list = opt.get_int_list("threads", {16, 64});
  // Depth must grow with thread count: the semi-sorted request stream is
  // divided across lanes, so each lane sees a larger stride and needs a
  // deeper readahead window to keep coalescing.
  const auto batch_list = opt.get_int_list("batches", {4, 16, 64});
  const double time_scale = opt.get_double("time-scale", 0.05);
  const double cache_fraction = opt.get_double("cache-fraction", 0.5);
  // Not from_flags: --threads here is a sweep list, not a single count. SEM
  // queue defaults replicated by hand (per-push delivery + secondary vertex
  // sort; see traversal_options.hpp).
  traversal_options topt;
  topt.queue.flush_batch = 1;
  topt.queue.secondary_vertex_sort = true;

  banner("Semi-External I/O Backend Sweep",
         "extension over paper §IV-C (docs/io_backends.md)");
  bench_report rep(opt, "ext_io_backends");

  const csr32 g = rmat_graph<vertex32>(rmat_a(scale, 42));
  vertex32 start = 0;
  for (vertex32 v = 1; v < g.num_vertices(); ++v) {
    if (g.out_degree(v) > g.out_degree(start)) start = v;
  }
  const auto tmp =
      std::filesystem::temp_directory_path() / "asyncgt_ext_io_backends";
  std::filesystem::create_directories(tmp);
  const std::string path = (tmp / "graph.agt").string();
  write_graph(path, g);

  const bfs_result<vertex32> reference = serial_bfs(g, start);
  const auto params = sem::device_preset_by_name("intel", time_scale);
  const std::uint64_t file_blocks =
      std::filesystem::file_size(path) / params.block_bytes + 1;
  const std::uint64_t cache_blocks = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(cache_fraction *
                                    static_cast<double>(file_blocks)));

  const auto run_one = [&](sem::io_backend_kind kind, std::size_t threads,
                           std::uint32_t batch) {
    sem::ssd_model dev(params);
    // Builder per run: the sweep's only variables are the backend and its
    // batch depth, everything else (cache size, device) is held constant.
    auto bundle = sem::sem_config(path)
                      .with_device(&dev)
                      .with_cache_blocks(cache_blocks)
                      .with_io_backend(sem::to_string(kind), batch)
                      .open<vertex32>();
    visitor_queue_config cfg = topt.queue;
    cfg.num_threads = threads;
    run_result r;
    bfs_result<vertex32> out;
    r.seconds =
        time_seconds([&] { out = async_bfs(*bundle.graph, start, cfg); });
    r.io = bundle.graph->backend().counters();
    r.labels_ok = out.level == reference.level;
    return r;
  };

  std::vector<sem::io_backend_kind> kinds;
  for (const auto kind : sem::compiled_io_backends()) {
    if (sem::io_backend_available(kind)) {
      kinds.push_back(kind);
    } else {
      std::printf("note: backend '%s' is compiled in but unavailable on "
                  "this host; skipping\n",
                  sem::to_string(kind));
    }
  }

  text_table table;
  table.header({"backend", "threads", "batch", "time (s)", "requests",
                "syscalls", "coalesced", "bytes/syscall", "peak inflight",
                "labels"});

  bool ok = true;
  json_value sweep = json_value::array();
  // sync syscall count per thread count — the coalescing ratio baseline.
  std::map<std::size_t, double> sync_batches;
  std::map<std::size_t, double> best_ratio;

  for (const auto t : thread_list) {
    const auto threads = static_cast<std::size_t>(t);
    for (const auto kind : kinds) {
      // Batch depth only matters to the batching backends; sync runs once.
      const std::vector<std::int64_t> batches =
          kind == sem::io_backend_kind::sync ? std::vector<std::int64_t>{1}
                                             : batch_list;
      for (const auto b : batches) {
        const auto batch = static_cast<std::uint32_t>(b);
        const run_result r = run_one(kind, threads, batch);
        ok &= shape_check(r.labels_ok,
                          std::string(sem::to_string(kind)) + " t=" +
                              std::to_string(threads) + " b=" +
                              std::to_string(batch) +
                              ": labels identical to serial BFS");
        if (kind == sem::io_backend_kind::sync) {
          sync_batches[threads] = static_cast<double>(r.io.batches);
        } else if (sync_batches.count(threads) != 0 && r.io.batches > 0) {
          const double ratio =
              sync_batches[threads] / static_cast<double>(r.io.batches);
          auto [it, inserted] = best_ratio.try_emplace(threads, ratio);
          if (!inserted) it->second = std::max(it->second, ratio);
        }
        table.row({sem::to_string(kind), std::to_string(threads),
                   kind == sem::io_backend_kind::sync ? "-"
                                                      : std::to_string(batch),
                   fmt_seconds(r.seconds), fmt_count(r.io.requests),
                   fmt_count(r.io.batches), fmt_count(r.io.coalesced_ranges),
                   fmt_count(static_cast<std::uint64_t>(r.io.bytes_per_batch())),
                   fmt_count(r.io.inflight_peak),
                   r.labels_ok ? "ok" : "DIFF"});
        if (rep.json_enabled()) {
          json_value row = json_value::object();
          row.set("backend", sem::to_string(kind));
          row.set("threads", static_cast<std::uint64_t>(threads));
          row.set("batch", static_cast<std::uint64_t>(batch));
          row.set("seconds", r.seconds);
          row.set("requests", r.io.requests);
          row.set("syscall_batches", r.io.batches);
          row.set("bytes_issued", r.io.bytes_issued);
          row.set("coalesced_ranges", r.io.coalesced_ranges);
          row.set("split_batches", r.io.split_batches);
          row.set("inflight_peak", r.io.inflight_peak);
          row.set("bytes_per_syscall", r.io.bytes_per_batch());
          row.set("labels_ok", r.labels_ok);
          sweep.push(std::move(row));
        }
      }
    }
    table.rule();
  }

  std::printf("%s\n", table.render().c_str());

  for (const auto t : thread_list) {
    const auto threads = static_cast<std::size_t>(t);
    const auto it = best_ratio.find(threads);
    const double ratio = it == best_ratio.end() ? 0.0 : it->second;
    ok &= shape_check(
        ratio >= 4.0,
        "coalescing issues >=4x fewer syscalls than sync at " +
            std::to_string(threads) + " threads (got " +
            std::to_string(ratio) + "x)");
  }

  rep.add_table(table);
  if (rep.json_enabled()) {
    json_value& s = rep.section("io_backends");
    s.set("device", params.name);
    s.set("time_scale", time_scale);
    s.set("scale", static_cast<std::uint64_t>(scale));
    s.set("sweep", std::move(sweep));
    rep.section("result").set("ok", ok);
  }
  rep.finish();
  return ok ? 0 : 1;
}
