// google-benchmark microbenchmarks for the hot primitives under the visitor
// queue: the d-ary heap (vs std::priority_queue), the routing hash, the
// spinlock (vs std::mutex), and the RNG pipeline feeding the generators.
// These guard against regressions in the building blocks; the paper-level
// experiments live in the table*/fig*/ablation* binaries.
#include <benchmark/benchmark.h>

#include <mutex>
#include <queue>
#include <random>

#include "queue/dary_heap.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/spinlock.hpp"

namespace {

using asyncgt::dary_heap;

void BM_DaryHeapPushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  asyncgt::xoshiro256ss rng(1);
  std::vector<std::uint64_t> values(n);
  for (auto& v : values) v = rng();
  for (auto _ : state) {
    dary_heap<std::uint64_t, std::less<std::uint64_t>> h;
    for (const auto v : values) h.push(v);
    std::uint64_t sink = 0;
    while (!h.empty()) sink ^= h.pop();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 2);
}
BENCHMARK(BM_DaryHeapPushPop)->Arg(1024)->Arg(65536);

void BM_StdPriorityQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  asyncgt::xoshiro256ss rng(1);
  std::vector<std::uint64_t> values(n);
  for (auto& v : values) v = rng();
  for (auto _ : state) {
    std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                        std::greater<std::uint64_t>>
        h;
    for (const auto v : values) h.push(v);
    std::uint64_t sink = 0;
    while (!h.empty()) {
      sink ^= h.top();
      h.pop();
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 2);
}
BENCHMARK(BM_StdPriorityQueuePushPop)->Arg(1024)->Arg(65536);

void BM_Mix64Routing(benchmark::State& state) {
  std::uint64_t v = 0;
  std::size_t sink = 0;
  for (auto _ : state) {
    sink ^= asyncgt::queue_of(v++, 512);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Mix64Routing);

void BM_SpinlockUncontended(benchmark::State& state) {
  asyncgt::spinlock lock;
  std::uint64_t counter = 0;
  for (auto _ : state) {
    std::lock_guard guard(lock);
    benchmark::DoNotOptimize(++counter);
  }
}
BENCHMARK(BM_SpinlockUncontended);

void BM_MutexUncontended(benchmark::State& state) {
  std::mutex lock;
  std::uint64_t counter = 0;
  for (auto _ : state) {
    std::lock_guard guard(lock);
    benchmark::DoNotOptimize(++counter);
  }
}
BENCHMARK(BM_MutexUncontended);

void BM_Xoshiro(benchmark::State& state) {
  asyncgt::xoshiro256ss rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Xoshiro);

void BM_Mt19937(benchmark::State& state) {
  std::mt19937_64 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Mt19937);

}  // namespace

BENCHMARK_MAIN();
