// google-benchmark microbenchmarks for the hot primitives under the visitor
// queue: the d-ary heap (vs std::priority_queue), the routing hash, the
// spinlock (vs std::mutex), the RNG pipeline feeding the generators, and the
// telemetry layer's overhead budget (BM_VisitorQueueTelemetry*: the
// sinks-off run must stay within ~2% of the seed, see docs/observability.md).
// These guard against regressions in the building blocks; the paper-level
// experiments live in the table*/fig*/ablation* binaries.
#include <benchmark/benchmark.h>

#include <mutex>
#include <queue>
#include <random>

#include "queue/dary_heap.hpp"
#include "queue/visitor_queue.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/trace_writer.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/spinlock.hpp"

namespace {

using asyncgt::dary_heap;

void BM_DaryHeapPushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  asyncgt::xoshiro256ss rng(1);
  std::vector<std::uint64_t> values(n);
  for (auto& v : values) v = rng();
  for (auto _ : state) {
    dary_heap<std::uint64_t, std::less<std::uint64_t>> h;
    for (const auto v : values) h.push(v);
    std::uint64_t sink = 0;
    while (!h.empty()) sink ^= h.pop();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 2);
}
BENCHMARK(BM_DaryHeapPushPop)->Arg(1024)->Arg(65536);

void BM_StdPriorityQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  asyncgt::xoshiro256ss rng(1);
  std::vector<std::uint64_t> values(n);
  for (auto& v : values) v = rng();
  for (auto _ : state) {
    std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                        std::greater<std::uint64_t>>
        h;
    for (const auto v : values) h.push(v);
    std::uint64_t sink = 0;
    while (!h.empty()) {
      sink ^= h.top();
      h.pop();
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 2);
}
BENCHMARK(BM_StdPriorityQueuePushPop)->Arg(1024)->Arg(65536);

void BM_Mix64Routing(benchmark::State& state) {
  std::uint64_t v = 0;
  std::size_t sink = 0;
  for (auto _ : state) {
    sink ^= asyncgt::queue_of(v++, 512);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Mix64Routing);

void BM_SpinlockUncontended(benchmark::State& state) {
  asyncgt::spinlock lock;
  std::uint64_t counter = 0;
  for (auto _ : state) {
    std::lock_guard guard(lock);
    benchmark::DoNotOptimize(++counter);
  }
}
BENCHMARK(BM_SpinlockUncontended);

void BM_MutexUncontended(benchmark::State& state) {
  std::mutex lock;
  std::uint64_t counter = 0;
  for (auto _ : state) {
    std::lock_guard guard(lock);
    benchmark::DoNotOptimize(++counter);
  }
}
BENCHMARK(BM_MutexUncontended);

void BM_Xoshiro(benchmark::State& state) {
  asyncgt::xoshiro256ss rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Xoshiro);

void BM_Mt19937(benchmark::State& state) {
  std::mt19937_64 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Mt19937);

// --- Telemetry overhead budget ---------------------------------------------
// The queue is instrumented unconditionally (no compile-time switch), so the
// null-sink cost — one pointer test per run plus the pre-existing counters —
// must stay in the noise. BM_VisitorQueueTelemetryOff is the guarded number;
// BM_VisitorQueueTelemetryOn shows what attached sinks add.

struct tree_state {
  std::uint64_t n = 0;
  std::vector<std::uint8_t> seen;
};

// Spreads over an implicit binary tree: ~n visits, no shared-state races
// (each vertex is visited only by its hash-owner thread).
struct tree_visitor {
  std::uint64_t vtx = 0;

  std::uint64_t vertex() const noexcept { return vtx; }
  std::uint64_t priority() const noexcept { return vtx; }

  template <typename State, typename Queue>
  void visit(State& s, Queue& q, std::size_t) const {
    if (s.seen[vtx]) return;
    s.seen[vtx] = 1;
    const std::uint64_t left = 2 * vtx + 1;
    if (left < s.n) q.push(tree_visitor{left});
    if (left + 1 < s.n) q.push(tree_visitor{left + 1});
  }
};

void run_tree(std::uint64_t n, asyncgt::visitor_queue_config cfg,
              benchmark::State& state) {
  for (auto _ : state) {
    tree_state s;
    s.n = n;
    s.seen.assign(n, 0);
    asyncgt::visitor_queue<tree_visitor, tree_state> q(cfg);
    q.push(tree_visitor{0});
    const auto stats = q.run(s);
    benchmark::DoNotOptimize(stats.visits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_VisitorQueueTelemetryOff(benchmark::State& state) {
  asyncgt::visitor_queue_config cfg;
  cfg.num_threads = 4;
  run_tree(static_cast<std::uint64_t>(state.range(0)), cfg, state);
}
BENCHMARK(BM_VisitorQueueTelemetryOff)->Arg(1 << 16);

void BM_VisitorQueueTelemetryOn(benchmark::State& state) {
  asyncgt::telemetry::metrics_registry registry(8);
  asyncgt::telemetry::trace_writer trace;
  asyncgt::visitor_queue_config cfg;
  cfg.num_threads = 4;
  cfg.metrics = &registry;
  cfg.trace = &trace;
  run_tree(static_cast<std::uint64_t>(state.range(0)), cfg, state);
}
BENCHMARK(BM_VisitorQueueTelemetryOn)->Arg(1 << 16);

// --- Batched cross-thread delivery ------------------------------------------
// Arg is the mailbox flush batch B: 1 reproduces the per-push delivery of the
// pre-layered queue (one mailbox mutex acquisition and one termination-counter
// reservation per visitor), larger B amortizes both over up to B visitors.
// Per-visitor push cost should drop as B grows; the flushes/pushes ratio from
// queue_run_stats tells the same story (~B× fewer mutex acquisitions).

void BM_VisitorQueueFlushBatch(benchmark::State& state) {
  asyncgt::visitor_queue_config cfg;
  cfg.num_threads = 4;
  cfg.flush_batch = static_cast<std::size_t>(state.range(1));
  run_tree(static_cast<std::uint64_t>(state.range(0)), cfg, state);
}
BENCHMARK(BM_VisitorQueueFlushBatch)
    ->Args({1 << 16, 1})
    ->Args({1 << 16, 8})
    ->Args({1 << 16, 64});

void BM_RegistryCounterAdd(benchmark::State& state) {
  asyncgt::telemetry::metrics_registry registry(8);
  auto& counter = registry.get_counter("bench.counter");
  for (auto _ : state) {
    counter.add(0);
  }
  benchmark::DoNotOptimize(counter.total());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RegistryCounterAdd);

void BM_ScopedSpanDisabled(benchmark::State& state) {
  for (auto _ : state) {
    asyncgt::telemetry::scoped_span span(nullptr, "noop");
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ScopedSpanDisabled);

}  // namespace

BENCHMARK_MAIN();
