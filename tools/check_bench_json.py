#!/usr/bin/env python3
"""Schema check for bench-report JSON emitted via --json (schema v1/v2/v3).

Mirrors telemetry::report::verify (src/telemetry/metrics_json.cpp) so CI and
ad-hoc tooling can validate BENCH_*.json artifacts without building the C++
tree; `agt_tool verify-json FILE` is the in-tree equivalent. Python 3 stdlib
only.

Beyond structure, this enforces the schema-v2 percentile invariant: any
object carrying a full {p50,p95,p99} or {p50_us,p95_us,p99_us} triple —
io_recorder latency summaries, registry histograms, per-job lifecycle
latencies — must satisfy p50 <= p95 <= p99, and p99 <= the sibling recorded
maximum (max / max_us / max_latency_us) when one is present. The C++ side
derives these by interpolation clamped to the exact max, so a violation
means a broken emitter, not noise.

It also validates hybrid-traversal phase breakdowns: any "phases" array
(bench::to_json(hybrid_extra), nested under sections like "hybrid".bfs/.cc)
must hold objects whose `direction` is one of top-down / bottom-up /
async-tail and whose `edge_inspections` is a non-negative number, and the
phase inspections must sum to the sibling `edge_inspections` total when one
is present.

Schema v3 adds the overload-safety surface: jobs[] entries may carry an
`outcome` (one of the job_outcome names), a non-negative `deadline_ms`, and
an integer `priority`; a "service" section (bench::to_json of
engine::service_counters) must satisfy the admission conservation law
submitted = rejected + active + completed + failed + cancelled +
deadline_exceeded + stalled + shed.

It also validates block-pressure blocks (bench::to_json(block_pressure) —
`sem.pressure` in agt_tool reports, per-mode `pressure` objects in
ext_hot_blocks): increments / decrements / pending must be non-negative,
decrements can never exceed increments (the tracker clamps at zero instead
of counting a phantom decrement), and when all three are present they must
satisfy pending == increments - decrements — the conservation law the hot
scheduling machinery rests on (docs/hot_blocks.md).

An "incremental" section (ext_incremental, docs/dynamic_graphs.md) is
checked against the repair planner's structural law: per algorithm,
0 <= reseeded <= affected <= n, with non-negative repair/full visit counts.

Usage: check_bench_json.py FILE [FILE...]
Exit status 0 if every file conforms, 1 otherwise.
"""
import json
import sys


def _num(obj, key):
    v = obj.get(key)
    if isinstance(v, bool) or not isinstance(v, (int, float)):
        return None
    return v


def check_percentiles(value, where):
    """Recursively checks percentile monotonicity; returns an error or None."""
    if isinstance(value, list):
        for i, entry in enumerate(value):
            error = check_percentiles(entry, "%s[%d]" % (where, i))
            if error is not None:
                return error
        return None
    if not isinstance(value, dict):
        return None
    for suffix in ("", "_us"):
        p50 = _num(value, "p50" + suffix)
        p95 = _num(value, "p95" + suffix)
        p99 = _num(value, "p99" + suffix)
        if p50 is None or p95 is None or p99 is None:
            continue
        if not (p50 <= p95 <= p99):
            return "%s: percentiles not monotone (p50%s=%r, p95%s=%r, p99%s=%r)" % (
                where, suffix, p50, suffix, p95, suffix, p99)
        maximum = _num(value, "max" + suffix)
        if maximum is None:
            maximum = _num(value, "max_latency_us")
        if maximum is not None and p99 > maximum:
            return "%s: p99%s=%r exceeds recorded max=%r" % (
                where, suffix, p99, maximum)
    for key, child in value.items():
        error = check_percentiles(child, "%s.%s" % (where, key))
        if error is not None:
            return error
    return None


_PHASE_DIRECTIONS = ("top-down", "bottom-up", "async-tail")


def check_hybrid_phases(value, where):
    """Recursively checks hybrid phase arrays; returns an error or None."""
    if isinstance(value, list):
        for i, entry in enumerate(value):
            error = check_hybrid_phases(entry, "%s[%d]" % (where, i))
            if error is not None:
                return error
        return None
    if not isinstance(value, dict):
        return None
    phases = value.get("phases")
    if isinstance(phases, list):
        total = 0
        for i, phase in enumerate(phases):
            p_where = "%s.phases[%d]" % (where, i)
            if not isinstance(phase, dict):
                return "%s is not an object" % p_where
            direction = phase.get("direction")
            if direction not in _PHASE_DIRECTIONS:
                return "%s: direction %r not in %s" % (
                    p_where, direction, "/".join(_PHASE_DIRECTIONS))
            inspections = _num(phase, "edge_inspections")
            if inspections is None or inspections < 0:
                return ("%s: edge_inspections must be a non-negative number"
                        % p_where)
            total += inspections
        declared = _num(value, "edge_inspections")
        if declared is not None and total != declared:
            return "%s: phase edge_inspections sum to %r, not the declared %r" % (
                where, total, declared)
    for key, child in value.items():
        error = check_hybrid_phases(child, "%s.%s" % (where, key))
        if error is not None:
            return error
    return None


def check_pressure(value, where):
    """Recursively checks block-pressure objects; returns an error or None."""
    if isinstance(value, list):
        for i, entry in enumerate(value):
            error = check_pressure(entry, "%s[%d]" % (where, i))
            if error is not None:
                return error
        return None
    if not isinstance(value, dict):
        return None
    pressure = value.get("pressure")
    if isinstance(pressure, dict):
        p_where = "%s.pressure" % where
        inc = _num(pressure, "increments")
        dec = _num(pressure, "decrements")
        pending = _num(pressure, "pending")
        for key, v in (("increments", inc), ("decrements", dec),
                       ("pending", pending)):
            if key in pressure and (v is None or v < 0):
                return "%s.%s must be a non-negative number" % (p_where, key)
        if inc is not None and dec is not None and dec > inc:
            return ("%s: decrements=%r exceed increments=%r (remove clamps "
                    "at zero, it never over-counts)" % (p_where, dec, inc))
        if inc is not None and dec is not None and pending is not None \
                and pending != inc - dec:
            return ("%s: conservation violated — pending=%r but "
                    "increments-decrements=%r" % (p_where, pending, inc - dec))
    for key, child in value.items():
        error = check_pressure(child, "%s.%s" % (where, key))
        if error is not None:
            return error
    return None


_OUTCOMES = ("running", "completed", "failed", "cancelled",
             "deadline_exceeded", "stalled", "shed")

# service-section conservation: submitted = the sum of these terminal (and
# still-active) buckets. Mirrors engine::service_counters' documented law.
_CONSERVED = ("rejected", "active", "completed", "failed", "cancelled",
              "deadline_exceeded", "stalled", "shed")


def check_service(section):
    """Validates a "service" section; returns an error or None."""
    if "submitted" not in section:
        # Legacy (pre-v3) shape: jobs_submitted/jobs_completed summaries
        # without the admission counters — nothing to conserve.
        return None
    for key in ("submitted",) + _CONSERVED:
        v = _num(section, key)
        if v is None or v < 0:
            return "service.%s must be a non-negative number" % key
    total = sum(section[k] for k in _CONSERVED)
    if section["submitted"] != total:
        return ("service: conservation violated — submitted=%r but "
                "terminal buckets sum to %r" % (section["submitted"], total))
    return None


def check_incremental(section):
    """Validates an "incremental" section; returns an error or None.

    The section is emitted by ext_incremental (and agt_tool update --json):
    batch shape at the top level plus per-algorithm repair accounting under
    "algos". Each algorithm entry must satisfy the structural law of the
    repair planner: 0 <= reseeded <= affected <= n (reseeded vertices are a
    subset of the affected set by construction — docs/dynamic_graphs.md),
    and repair_visits / full_visits / visit_ratio must be non-negative.
    """
    n = _num(section, "n")
    for key in ("n", "base_edges", "delta_inserts", "delta_deletes",
                "epoch"):
        if key in section:
            v = _num(section, key)
            if v is None or v < 0:
                return "incremental.%s must be a non-negative number" % key
    algos = section.get("algos")
    if algos is None:
        return None
    if not isinstance(algos, dict):
        return "incremental.algos must be an object"
    for name, entry in algos.items():
        where = "incremental.algos.%s" % name
        if not isinstance(entry, dict):
            return "%s is not an object" % where
        affected = _num(entry, "affected")
        reseeded = _num(entry, "reseeded")
        if affected is None or reseeded is None:
            return "%s must carry numeric affected and reseeded" % where
        if not (0 <= reseeded <= affected):
            return ("%s: reseeded=%r must be within [0, affected=%r]"
                    % (where, reseeded, affected))
        if n is not None and affected > n:
            return "%s: affected=%r exceeds n=%r" % (where, affected, n)
        for key in ("repair_visits", "full_visits", "visit_ratio"):
            if key in entry:
                v = _num(entry, key)
                if v is None or v < 0:
                    return "%s.%s must be a non-negative number" % (where,
                                                                   key)
    return None


def check(doc):
    """Returns None if `doc` conforms to schema v1/v2/v3, else an error."""
    if not isinstance(doc, dict):
        return "document is not a JSON object"
    version = doc.get("schema_version")
    if isinstance(version, bool) or version not in (1, 2, 3):
        return "schema_version must be the integer 1, 2 or 3"
    name = doc.get("name")
    if not isinstance(name, str) or not name:
        return "name must be a non-empty string"
    if not isinstance(doc.get("config"), dict):
        return "config must be an object"
    sections = doc.get("sections")
    if not isinstance(sections, dict):
        return "sections must be an object"
    for key, value in sections.items():
        if not isinstance(value, dict):
            return "section '%s' is not an object" % key
        if key == "service":
            error = check_service(value)
            if error is not None:
                return error
        if key == "incremental":
            error = check_incremental(value)
            if error is not None:
                return error
    rows = doc.get("rows")
    if rows is not None:
        if not isinstance(rows, list):
            return "rows must be an array"
        for row in rows:
            if not isinstance(row, dict):
                return "rows entries must be objects"
    jobs = doc.get("jobs")
    if jobs is not None:
        if not isinstance(jobs, list):
            return "jobs must be an array"
        for entry in jobs:
            if not isinstance(entry, dict):
                return "jobs entries must be objects"
            job_id = entry.get("job_id")
            if isinstance(job_id, bool) or not isinstance(job_id, int):
                return "jobs entries must carry an integer job_id"
            outcome = entry.get("outcome")
            if outcome is not None and outcome not in _OUTCOMES:
                return "jobs[%r]: outcome %r not in %s" % (
                    job_id, outcome, "/".join(_OUTCOMES))
            deadline = entry.get("deadline_ms")
            if deadline is not None and (
                    isinstance(deadline, bool)
                    or not isinstance(deadline, (int, float))
                    or deadline < 0):
                return "jobs[%r]: deadline_ms must be non-negative" % job_id
            priority = entry.get("priority")
            if priority is not None and (isinstance(priority, bool)
                                         or not isinstance(priority, int)):
                return "jobs[%r]: priority must be an integer" % job_id
    error = check_hybrid_phases(doc, "$")
    if error is not None:
        return error
    error = check_pressure(doc, "$")
    if error is not None:
        return error
    return check_percentiles(doc, "$")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    status = 0
    for path in argv[1:]:
        try:
            with open(path, "rb") as f:
                doc = json.load(f)
        except (OSError, ValueError) as e:
            print("FAIL: %s: %s" % (path, e))
            status = 1
            continue
        error = check(doc)
        if error is not None:
            print("FAIL: %s: %s" % (path, error))
            status = 1
        else:
            print("ok: %s conforms to bench-report schema v%s"
                  % (path, doc.get("schema_version")))
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
