#!/usr/bin/env python3
"""Schema check for bench-report JSON emitted via --json (schema v1).

Mirrors telemetry::report::verify (src/telemetry/metrics_json.cpp) so CI and
ad-hoc tooling can validate BENCH_*.json artifacts without building the C++
tree; `agt_tool verify-json FILE` is the in-tree equivalent. Python 3 stdlib
only.

Usage: check_bench_json.py FILE [FILE...]
Exit status 0 if every file conforms, 1 otherwise.
"""
import json
import sys


def check(doc):
    """Returns None if `doc` conforms to schema v1, else an error string."""
    if not isinstance(doc, dict):
        return "document is not a JSON object"
    if doc.get("schema_version") != 1 or isinstance(
        doc.get("schema_version"), bool
    ):
        return "schema_version must be the integer 1"
    name = doc.get("name")
    if not isinstance(name, str) or not name:
        return "name must be a non-empty string"
    if not isinstance(doc.get("config"), dict):
        return "config must be an object"
    sections = doc.get("sections")
    if not isinstance(sections, dict):
        return "sections must be an object"
    for key, value in sections.items():
        if not isinstance(value, dict):
            return "section '%s' is not an object" % key
    rows = doc.get("rows")
    if rows is not None:
        if not isinstance(rows, list):
            return "rows must be an array"
        for row in rows:
            if not isinstance(row, dict):
                return "rows entries must be objects"
    return None


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    status = 0
    for path in argv[1:]:
        try:
            with open(path, "rb") as f:
                doc = json.load(f)
        except (OSError, ValueError) as e:
            print("FAIL: %s: %s" % (path, e))
            status = 1
            continue
        error = check(doc)
        if error is not None:
            print("FAIL: %s: %s" % (path, error))
            status = 1
        else:
            print("ok: %s conforms to bench-report schema v1" % path)
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
