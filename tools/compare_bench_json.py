#!/usr/bin/env python3
"""Diff two bench-report JSON files (schema v1/v2/v3) and flag regressions.

Walks both documents in parallel and reports every numeric leaf that
changed, as an absolute pair and a percentage delta. Intended use: keep a
known-good BENCH_*.json as a baseline, re-run the bench after a change, and
diff:

    compare_bench_json.py baseline.json current.json
    compare_bench_json.py --threshold 10 --watch 'seconds|_us' a.json b.json

With --threshold PCT, any watched metric that grew by more than PCT percent
makes the script exit 1 (a regression), so it can gate a CI job. "Watched"
defaults to every numeric leaf; narrow it with --watch REGEX matched against
the dotted path (e.g. 'sections\\.timing'). Growth is always the regression
direction — the metrics this tree emits (seconds, latencies, io bytes,
retries) are all cost-like. Leaves present in only one file are reported
but never trip the threshold: schema v2 added whole sections, and a
baseline captured before an emitter change should not hard-fail the diff.

Paths containing `edge_inspections` (the hybrid traversal's work metric —
ext_structure_sweep's "hybrid" section, per-phase breakdowns, per-job
attribution) are always threshold-watched even when --watch narrows to
something else: a hybrid run quietly inspecting more edges is exactly the
regression the direction-switch heuristics exist to prevent. Opt out with
--no-watch-inspections.

The schema-v3 overload counters (paths ending in service `rejected`,
`shed`, or `deadline_exceeded`) are always-watched the same way: a change
that starts bouncing or killing jobs under the same workload is a service
regression even when --watch is trained on timings. Opt out with
--no-watch-service.

The cache-efficiency family is always-watched too (opt out with
--no-watch-cache). `bytes_per_visit` (the SEM efficiency headline —
device bytes read per completed visit) and `policy_rejects` are cost-like
and gate on growth; `hit_rate` leaves gate in the INVERTED direction — a
hit rate that *shrank* by more than the threshold is the regression, since
a bigger hit rate is strictly better. With --no-watch-cache these leaves
fall back to the default growth-direction handling of whatever --watch
selects.

The incremental-repair work metrics (paths ending in `repair_visits` or
`visit_ratio` — ext_incremental's "incremental" section, per-job
attribution) are always growth-watched too: a repair creeping toward
full-recompute cost is the regression the delta overlay exists to prevent.
Opt out with --no-watch-incremental.

Exit status: 0 = no regression, 1 = regression over threshold,
2 = usage / unreadable input.
"""
import argparse
import json
import re
import sys


def is_number(v):
    return not isinstance(v, bool) and isinstance(v, (int, float))


# Overload counters that are always threshold-watched (see module doc):
# the engine's "service" section plus the service.* metric family any
# report may carry.
_SERVICE_WATCH = re.compile(
    r"service[.\]].*(rejected|shed|deadline_exceeded)"
    r"|\.(rejected|shed|shed_requests|deadline_exceeded)$")

# Cache-efficiency family (see module doc). Growth-watched: bytes moved per
# unit of completed work and eviction-policy rejects. Shrink-watched
# (inverted direction): cache hit rates — a smaller one is the regression.
_CACHE_GROW_WATCH = re.compile(r"bytes_per_visit$|\.policy_rejects$")
_CACHE_SHRINK_WATCH = re.compile(r"\.hit_rate$")

# Incremental-repair work (see module doc): repair_visits is the dynamic
# extension's headline cost — a repair quietly approaching full-recompute
# work is the regression ext_incremental's gate exists to prevent.
_INCREMENTAL_WATCH = re.compile(r"repair_visits$|\.visit_ratio$")


def numeric_leaves(value, where, out):
    """Flattens `value` into {dotted.path: number} for every numeric leaf."""
    if is_number(value):
        out[where] = value
    elif isinstance(value, dict):
        for key in value:
            numeric_leaves(value[key], "%s.%s" % (where, key) if where else key,
                           out)
    elif isinstance(value, list):
        # Index jobs by job_id when available so reordering between runs
        # (concurrent jobs complete in nondeterministic order) still pairs
        # the same job with itself.
        for i, entry in enumerate(value):
            tag = i
            if isinstance(entry, dict) and is_number(entry.get("job_id")):
                tag = "job%d" % entry["job_id"]
            numeric_leaves(entry, "%s[%s]" % (where, tag), out)


def load(path):
    with open(path, "rb") as f:
        return json.load(f)


def pct_delta(old, new):
    if old == 0:
        return None  # undefined; shown as "new/inf" in the report
    return 100.0 * (new - old) / abs(old)


def main(argv):
    parser = argparse.ArgumentParser(
        description="Diff two bench-report JSON files.")
    parser.add_argument("baseline", help="baseline report (the 'before')")
    parser.add_argument("current", help="current report (the 'after')")
    parser.add_argument("--threshold", type=float, default=None, metavar="PCT",
                        help="exit 1 if any watched metric grew by more "
                             "than PCT percent")
    parser.add_argument("--watch", default=None, metavar="REGEX",
                        help="only apply --threshold to paths matching "
                             "REGEX (default: all numeric leaves)")
    parser.add_argument("--no-watch-inspections", action="store_true",
                        help="do not force-watch edge_inspections paths "
                             "when --watch narrows the threshold scope")
    parser.add_argument("--no-watch-service", action="store_true",
                        help="do not force-watch the service overload "
                             "counters (rejected/shed/deadline_exceeded)")
    parser.add_argument("--no-watch-cache", action="store_true",
                        help="do not force-watch the cache-efficiency "
                             "family (hit_rate shrink, bytes_per_visit / "
                             "policy_rejects growth)")
    parser.add_argument("--no-watch-incremental", action="store_true",
                        help="do not force-watch the incremental-repair "
                             "work metrics (repair_visits / visit_ratio)")
    parser.add_argument("--all", action="store_true",
                        help="also print unchanged metrics")
    args = parser.parse_args(argv[1:])

    try:
        watch = re.compile(args.watch) if args.watch else None
    except re.error as e:
        print("bad --watch regex: %s" % e, file=sys.stderr)
        return 2
    try:
        base_doc, cur_doc = load(args.baseline), load(args.current)
    except (OSError, ValueError) as e:
        print("cannot read input: %s" % e, file=sys.stderr)
        return 2

    base, cur = {}, {}
    numeric_leaves(base_doc, "", base)
    numeric_leaves(cur_doc, "", cur)

    regressions = []
    changed = 0
    for path in sorted(set(base) | set(cur)):
        if path not in base:
            print("  %-60s  (only in current) = %g" % (path, cur[path]))
            changed += 1
            continue
        if path not in cur:
            print("  %-60s  (only in baseline) = %g" % (path, base[path]))
            changed += 1
            continue
        old, new = base[path], cur[path]
        if old == new:
            if args.all:
                print("  %-60s  %g (unchanged)" % (path, old))
            continue
        changed += 1
        delta = pct_delta(old, new)
        delta_str = "%+.1f%%" % delta if delta is not None else "new/inf"
        print("  %-60s  %g -> %g  (%s)" % (path, old, new, delta_str))
        watched = watch is None or watch.search(path)
        inverted = False
        if not args.no_watch_inspections and "edge_inspections" in path:
            watched = True
        if not args.no_watch_service and _SERVICE_WATCH.search(path):
            watched = True
        if not args.no_watch_cache:
            if _CACHE_GROW_WATCH.search(path):
                watched = True
            if _CACHE_SHRINK_WATCH.search(path):
                watched = True
                inverted = True  # a shrinking hit rate is the regression
        if not args.no_watch_incremental and _INCREMENTAL_WATCH.search(path):
            watched = True
        if args.threshold is not None and watched:
            if inverted:
                bad = delta is not None and delta < -args.threshold
            else:
                bad = (delta is not None and delta > args.threshold) or \
                      (delta is None and new > 0)
            if bad:
                regressions.append((path, old, new, delta_str))

    if changed == 0:
        print("no differences between %s and %s" % (args.baseline,
                                                    args.current))
    if regressions:
        print("\nREGRESSION: %d metric(s) grew past %.1f%%:"
              % (len(regressions), args.threshold))
        for path, old, new, delta_str in regressions:
            print("  %s: %g -> %g (%s)" % (path, old, new, delta_str))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
