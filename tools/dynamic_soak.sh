#!/usr/bin/env bash
# Builds the tree under AddressSanitizer + UBSan and soaks the dynamic-graph
# extension (docs/dynamic_graphs.md): repeated rounds of the randomized
# differential battery (ctest label `dynamic` — overlay multiset-model
# properties, incremental==recompute for BFS/SSSP/CC over IM and SEM,
# concurrent update/query interleaves), then an end-to-end `agt_tool update`
# pass over a generated graph:
#
#   1. IM differential: every algorithm's incremental repair must be
#      bit-identical to a full recompute, epoch by epoch.
#   2. SEM differential + compaction: same checks through the block-cached
#      storage path, then the head epoch is rewritten as a clean .agt
#      (+.rev) which must validate and traverse to the same summary.
#   3. Injected-fault compaction: a fatally-faulting device makes the
#      compaction fail mid-stream; the run must exit 3, leave NO partial
#      output file behind, and prove the pinned overlay epoch is still
#      fully readable (agt_tool disarms the injector and sweeps every
#      edge of the epoch).
#
#   tools/dynamic_soak.sh [-jN] [--rounds=N]
#
# Exits non-zero on any sanitizer report (halt_on_error=1), test failure,
# or contract breach in the end-to-end pass. The concurrency-racy subset of
# the same battery also runs under TSan via tools/tsan_check.sh.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="-j$(nproc)"
ROUNDS=3
for arg in "$@"; do
  case "${arg}" in
    -j*) JOBS="${arg}" ;;
    --rounds=*) ROUNDS="${arg#--rounds=}" ;;
    *)
      echo "unknown argument: ${arg}" >&2
      exit 2
      ;;
  esac
done

cmake --preset asan
cmake --build --preset asan "${JOBS}" --target test_dynamic agt_tool

# The battery is seed-deterministic; the rounds exercise the scheduling
# nondeterminism around it (thread interleavings, mailbox timing).
for round in $(seq 1 "${ROUNDS}"); do
  echo "=== dynamic soak: ctest -L dynamic, round ${round}/${ROUNDS} ==="
  (cd build-asan && ctest -L dynamic --output-on-failure "${JOBS}")
done

TOOL=./build-asan/tools/agt_tool
WORK="$(mktemp -d /tmp/asyncgt_dynamic_soak.XXXXXX)"
trap 'rm -rf "${WORK}"' EXIT

echo "=== dynamic soak: end-to-end agt_tool update ==="
"${TOOL}" generate --type=rmat-a --scale=12 --undirected --weights=uw \
  --seed=7 --out="${WORK}/soak.agt"
"${TOOL}" transpose "${WORK}/soak.agt"   # deletes repair through in-edges

# Delta file: 4 batches (= 4 overlay epochs) of mixed inserts/deletes over
# the 4096-vertex id space, mirrored by --undirected below so the graph
# stays symmetric (incremental CC's precondition).
awk 'BEGIN {
  srand(7);
  for (b = 0; b < 4; b++) {
    for (i = 0; i < 64; i++) {
      u = int(rand() * 4096); v = int(rand() * 4096);
      if (i % 4 == 3) printf "- %d %d\n", u, v;
      else            printf "+ %d %d %d\n", u, v, 1 + int(rand() * 4);
    }
    print "";
  }
}' > "${WORK}/delta.txt"

# 1. IM differential, every algorithm.
for algo in bfs sssp cc; do
  echo "--- update --verify --algo=${algo} (in-memory) ---"
  "${TOOL}" update "${WORK}/soak.agt" --delta="${WORK}/delta.txt" \
    --undirected --verify --algo="${algo}" --threads=8
done

# 2. SEM differential + clean compaction; the compacted file must validate
# and produce the same traversal the overlay did.
echo "--- update --verify --sem + compaction ---"
"${TOOL}" update "${WORK}/soak.agt" --delta="${WORK}/delta.txt" \
  --undirected --verify --algo=bfs --threads=8 \
  --sem --time-scale=0.01 --compact --out="${WORK}/compacted.agt" \
  --json="${WORK}/update.json"
"${TOOL}" validate "${WORK}/compacted.agt"
"${TOOL}" bfs "${WORK}/compacted.agt" --threads=8
"${TOOL}" verify-json "${WORK}/update.json"

# 3. Fatal faults mid-compaction: exit 3 (failed-but-contained), no partial
# output, pinned epoch proven readable. eio=0.005,fatal makes roughly one
# in 200 device reads a non-retryable EIO — the external-sort pass over
# ~100k edges is statistically guaranteed to hit several.
echo "--- update --compact under fatal injected faults ---"
rc=0
"${TOOL}" update "${WORK}/soak.agt" --delta="${WORK}/delta.txt" \
  --undirected --threads=8 --sem --time-scale=0.01 \
  --inject=eio=0.005,seed=11,fatal --inject-at=compact \
  --compact --out="${WORK}/doomed.agt" || rc=$?
if [ "${rc}" -ne 3 ]; then
  echo "FAIL: faulted compaction exited ${rc}, expected 3" >&2
  exit 1
fi
for leftover in "${WORK}/doomed.agt" "${WORK}/doomed.agt.rev"; do
  if [ -e "${leftover}" ]; then
    echo "FAIL: failed compaction left partial output ${leftover}" >&2
    exit 1
  fi
done

echo "dynamic soak passed: ${ROUNDS} battery round(s) + end-to-end update"
