#!/usr/bin/env bash
# Overload soak (docs/robustness.md): hammers the traversal service past
# its capacity and asserts the PR's overload-safety acceptance criteria
# end to end:
#
#   * the in-binary overload battery (ctest -L overload: 4x pool
#     oversubscription, mixed priorities, injected wedges, tight
#     deadlines) plus the watchdog/admission suites, iterated ROUNDS
#     times to shake out schedule-dependent interleavings;
#   * an agt_tool stats run with an admission bound, shed policy, mixed
#     priorities, and per-job deadlines — the emitted JSON report must
#     pass the schema check, and the service section's conservation law
#     (submitted == rejected + completed + failed + cancelled +
#     deadline_exceeded + stalled + shed) must hold exactly;
#   * a semi-external traversal wedged by the fault injector's stall mode
#     (--inject=stall=1) must be terminated by the watchdog with a typed
#     reason and agt_tool's contract exit code 4 — never a hang, never a
#     generic failure.
#
# The soak finishing at all is the no-deadlock assertion; every round
# re-runs on a fresh engine, so a leaked gang in round N wedges round N+1.
#
#   tools/overload_soak.sh [-jN] [--rounds=N]
#
# Exits non-zero on any test failure, schema violation, conservation
# violation, or wrong exit code.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="-j$(nproc)"
ROUNDS=3
for arg in "$@"; do
  case "${arg}" in
    -j*) JOBS="${arg}" ;;
    --rounds=*) ROUNDS="${arg#--rounds=}" ;;
    *)
      echo "unknown argument: ${arg}" >&2
      exit 2
      ;;
  esac
done

cmake --preset default
cmake --build --preset default "${JOBS}" \
  --target test_overload test_service agt_tool

for ((round = 1; round <= ROUNDS; ++round)); do
  echo "=== overload soak: round ${round}/${ROUNDS} ==="
  ctest --test-dir build --output-on-failure -L overload
  ctest --test-dir build --output-on-failure -R 'Watchdog|Admission'
done

# End-to-end admission pass: more jobs than the pending bound allows, shed
# policy, mixed priorities, generous deadlines. agt_tool must exit 0 (the
# stats workload tolerates typed terminations) and the report's service
# section must conserve exactly — check_bench_json.py enforces the law.
report="$(mktemp /tmp/overload_soak.XXXXXX.json)"
trap 'rm -f "${report}"' EXIT
echo "=== overload soak: agt_tool stats under shed admission ==="
./build/tools/agt_tool stats --scale=12 --threads=2 --jobs=12 \
  --max-pending=4 --admission=shed --mix-priority \
  --deadline-ms=20000 --stall-grace-ms=1000 --json "${report}"
python3 tools/check_bench_json.py "${report}"
python3 - "${report}" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    svc = json.load(f)["sections"]["service"]
law = (svc["rejected"] + svc["completed"] + svc["failed"] +
       svc["cancelled"] + svc["deadline_exceeded"] + svc["stalled"] +
       svc["shed"])
assert svc["active"] == 0, f"jobs still active at exit: {svc['active']}"
assert svc["submitted"] == 12, f"expected 12 submitted, got {svc['submitted']}"
assert svc["submitted"] == law, f"conservation violated: {svc}"
print(f"conservation holds: {svc['submitted']} submitted = "
      f"{svc['completed']} completed + {svc['rejected']} rejected + "
      f"{svc['shed']} shed + {svc['deadline_exceeded']} deadline_exceeded")
PY

# End-to-end stall pass: every SEM read wedges until the watchdog's abort
# hint lands; the job must terminate typed (deadline or stall) within the
# configured windows, and agt_tool must report it via exit code 4.
echo "=== overload soak: watchdog vs injected stall ==="
rc=0
./build/tools/agt_tool bfs --sem --scale=12 --threads=4 \
  --inject=stall=1 --stall-grace-ms=300 --deadline-ms=10000 || rc=$?
if [[ "${rc}" -ne 4 ]]; then
  echo "expected exit code 4 (deadline/stall termination), got ${rc}" >&2
  exit 1
fi

echo "overload soak passed (${ROUNDS} rounds)"
