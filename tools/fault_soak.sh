#!/usr/bin/env bash
# Builds the tree under AddressSanitizer + UBSan and runs the fault-
# tolerance battery (ctest label `fault`): injector determinism, the
# edge_file retry/backoff loop, engine-wide abort containment, hostile .agt
# inputs, and the end-to-end injected-fault soak with checkpoint-on-error
# resume (docs/robustness.md). Wraps the `asan` presets in CMakePresets.json
# so CI and humans run the identical configuration:
#
#   tools/fault_soak.sh [-jN]
#
# Exits non-zero on any sanitizer report (halt_on_error=1) or test failure.
# The concurrency-racy subset of the same battery also runs under TSan via
# tools/tsan_check.sh.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${1:--j$(nproc)}"

cmake --preset asan
cmake --build --preset asan "${JOBS}" --target test_fault
ctest --preset asan
