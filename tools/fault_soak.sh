#!/usr/bin/env bash
# Builds the tree under AddressSanitizer + UBSan and runs the fault-
# tolerance battery (ctest labels `fault`, `diff`, `backend`): injector
# determinism, the edge_file retry/backoff loop, engine-wide abort
# containment, hostile .agt inputs, the end-to-end injected-fault soak with
# checkpoint-on-error resume (docs/robustness.md), and the differential /
# backend-identity suites (docs/io_backends.md). Wraps the `asan` presets in
# CMakePresets.json so CI and humans run the identical configuration:
#
#   tools/fault_soak.sh [-jN] [--io-backend=LIST]
#
# --io-backend (default "sync,coalescing") adds an end-to-end pass: for each
# listed backend, an injected-fault SEM traversal through agt_tool must
# finish with identical results and zero gave-up reads — the same traversal
# bytes, moved by a different transport.
#
# Exits non-zero on any sanitizer report (halt_on_error=1) or test failure.
# The concurrency-racy subset of the same battery also runs under TSan via
# tools/tsan_check.sh.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="-j$(nproc)"
BACKENDS="sync,coalescing"
for arg in "$@"; do
  case "${arg}" in
    -j*) JOBS="${arg}" ;;
    --io-backend=*) BACKENDS="${arg#--io-backend=}" ;;
    *)
      echo "unknown argument: ${arg}" >&2
      exit 2
      ;;
  esac
done

cmake --preset asan
cmake --build --preset asan "${JOBS}" --target test_fault test_diff test_backend agt_tool
ctest --preset asan

# End-to-end backend pass: the injected-fault demo traversal, once per
# requested backend. agt_tool exits non-zero if the traversal aborts or the
# JSON report fails its own schema check.
for backend in ${BACKENDS//,/ }; do
  echo "=== fault soak: --io-backend=${backend} ==="
  ./build-asan/tools/agt_tool bfs --sem --scale=12 --threads=16 \
    --time-scale=0.01 --io-backend="${backend}" --io-batch=8 \
    --inject=eio=0.02,seed=7
done
