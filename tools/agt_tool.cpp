// agt — command-line utility for .agt graph files.
//
// Subcommands:
//   generate  --type=rmat-a|rmat-b|web|grid|chain --out=FILE [...]
//             synthesize a graph and write it to disk
//   info      FILE                 print header, sizes, degree statistics
//   validate  FILE                 structural integrity check (offsets,
//                                  target ranges, symmetry probe)
//   bfs       FILE [--start=N] [--threads=16] [--sem] [--device=NAME]
//   sssp      FILE [--start=N] [--threads=16] [--sem] [--device=NAME]
//   cc        FILE [--threads=16] [--sem] [--device=NAME]
//   pagerank  FILE [--threads=16] [--alpha=0.85] [--top=10] [--sem] [...]
//   kcore     FILE [--threads=16] [--sem] [...]
//   metrics   FILE [--sweeps=2] [--samples=3]   diameter/path-length stats
//   stats     [FILE] [--jobs=4] [--sem]   mixed service workload, per-job
//                                  telemetry + lifecycle percentiles
//   update    FILE --delta=DELTAS  apply edge-delta batches through the
//                                  delta overlay, optionally verifying
//                                  incremental repair against recompute
//                                  and compacting to a clean .agt
//   import    EDGELIST.txt --out=FILE [--vertices=N] [--undirected]
//   export    FILE --out=EDGELIST.txt
//
// `generate --out-of-core` builds the file through the external sorter with
// a bounded memory budget (--memory-mb), the workflow needed when the edge
// set exceeds RAM. The traversal subcommands run either in-memory or
// (--sem) semi-externally over a simulated device, printing the same
// summary either way — a handy smoke test that the two storage paths agree.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>

#include "asyncgt.hpp"
#include "bench_report.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace asyncgt;
using telemetry::json_value;

int usage() {
  std::fprintf(stderr,
               "usage: agt_tool <generate|info|validate|bfs|sssp|cc> ...\n"
               "  generate --type=rmat-a|rmat-b|web|grid|chain --out=FILE\n"
               "           [--scale=16] [--edge-factor=16] [--seed=42]\n"
               "           [--undirected] [--weights=none|uw|luw]\n"
               "           [--hosts=500] [--width=256] [--height=256]\n"
               "  info FILE\n"
               "  validate FILE\n"
               "  transpose FILE         write FILE's reverse edge file\n"
               "                         (FILE.rev) for --hybrid / --sem\n"
               "  bfs|sssp [FILE] [--start=0] [--threads=16] [--sem]\n"
               "           [--flush-batch=N]  (default 64 in-memory, 1 SEM)\n"
               "           [--device=fusionio|intel|corsair] "
               "[--time-scale=1]\n"
               "  cc [FILE] [--threads=16] [--sem] [--device=...]\n"
               "  update FILE --delta=DELTAS [--verify] [--algo=bfs|sssp|cc]\n"
               "           [--start=0] [--undirected] [--compact --out=FILE]\n"
               "           [--sem] [--inject=SPEC] [--inject-at=open|compact]\n"
               "           [--memory-mb=64]\n"
               "           apply an edge-delta file ('+ u v [w]' / '- u v'\n"
               "           lines, blank line = new batch/epoch) through the\n"
               "           delta overlay; --verify checks incremental repair\n"
               "           against a full recompute each epoch; --compact\n"
               "           rewrites the head epoch as a clean .agt (+.rev)\n"
               "           (docs/dynamic_graphs.md)\n"
               "  stats [FILE] [--jobs=4] [--threads=16] [--sem]\n"
               "           run a mixed bfs/sssp/cc workload through the\n"
               "           service and print per-job telemetry (counters,\n"
               "           lifecycle latencies, percentiles); overload\n"
               "           knobs: [--admission=block|reject|shed]\n"
               "           [--max-pending=N] [--admission-timeout-ms=N]\n"
               "           [--memory-budget-mb=N] [--mix-priority]\n"
               "  verify-json FILE       schema-check an emitted report\n"
               "\n"
               "traversals also accept telemetry flags:\n"
               "  --json FILE            write a machine-readable report\n"
               "  --trace FILE           write a chrome://tracing file\n"
               "  --sample-interval-us N sampler period (default 2000)\n"
               "  --stats-dump N         print per-interval metric deltas\n"
               "                         every N sampler ticks\n"
               "  --cache-fraction F     SEM block cache, fraction of file\n"
               "and fault-tolerance flags (docs/robustness.md):\n"
               "  --inject SPEC          SEM fault injection, e.g.\n"
               "                         eio=0.01,seed=7[,fatal][,bad=LO-HI]\n"
               "                         [,stall=P]\n"
               "  --io-retries N         transient-errno retry budget (4)\n"
               "  --io-backoff-us N      initial retry backoff (50)\n"
               "overload-safety flags (docs/service_api.md):\n"
               "  --deadline-ms N        cancel the job past N ms (exit 4)\n"
               "  --stall-grace-ms N     cancel when no progress for N ms\n"
               "                         while running (exit 4)\n"
               "  --priority P           low|normal|high or an integer\n"
               "and SEM I/O backend flags (docs/io_backends.md):\n"
               "  --io-backend NAME      sync|coalescing|uring (default sync)\n"
               "  --io-batch N           coalescing batch depth (default 8)\n"
               "hot-block scheduling flags (docs/hot_blocks.md):\n"
               "  --ordering hot         pop visitors whose disk block is\n"
               "                         cache-resident or heavily pending\n"
               "  --cache-policy P       lru|pressure: pressure resists\n"
               "                         evicting blocks with queued work\n"
               "  --prefetch-hot         readahead hot non-resident blocks\n"
               "                         (coalescing/uring backends only)\n"
               "  --hot-threshold N      pending visitors that make a block\n"
               "                         hot (default 4)\n"
               "  --checkpoint-on-error F  bfs/sssp: save emergency\n"
               "                         checkpoint to F on abort (exit 3)\n"
               "  --resume F             bfs/sssp: resume from checkpoint F\n"
               "hybrid traversal flags (docs/hybrid_traversal.md):\n"
               "  --hybrid               bfs/cc: frontier-adaptive direction\n"
               "                         switching (needs FILE.rev under\n"
               "                         --sem; built in memory otherwise)\n"
               "  --hybrid-alpha X       top-down -> bottom-up (default 14)\n"
               "  --hybrid-beta X        bottom-up -> top-down (default 24)\n"
               "without FILE, traversals synthesize an RMAT graph\n"
               "(--scale=14) and run it semi-externally as a demo.\n"
               "exit codes: 0 ok, 1 error, 2 usage, 3 aborted/failed,\n"
               "4 deadline exceeded or stalled, 5 admission rejected\n");
  return 2;
}

csr32 generate_graph(const options& opt) {
  const std::string type = opt.get_string("type", "rmat-a");
  const auto scale = static_cast<unsigned>(opt.get_int("scale", 16));
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 42));
  const bool undirected = opt.get_bool("undirected", false);

  csr32 g;
  if (type == "rmat-a" || type == "rmat-b") {
    rmat_params p = type == "rmat-a" ? rmat_a(scale, seed) : rmat_b(scale, seed);
    p.edge_factor = static_cast<unsigned>(opt.get_int("edge-factor", 16));
    g = undirected ? rmat_graph_undirected<vertex32>(p)
                   : rmat_graph<vertex32>(p);
  } else if (type == "web") {
    webgen_params p;
    p.num_hosts = static_cast<std::uint64_t>(opt.get_int("hosts", 500));
    p.seed = seed;
    g = webgen_graph<vertex32>(p);  // always symmetric
  } else if (type == "grid") {
    g = grid_graph<vertex32>(
        static_cast<std::uint64_t>(opt.get_int("width", 256)),
        static_cast<std::uint64_t>(opt.get_int("height", 256)));
  } else if (type == "chain") {
    g = chain_graph<vertex32>(
        static_cast<std::uint64_t>(opt.get_int("length", 1 << 16)),
        undirected);
  } else {
    throw std::invalid_argument("unknown --type '" + type + "'");
  }

  const std::string weights = opt.get_string("weights", "none");
  if (weights == "uw") {
    g = add_weights(g, weight_scheme::uniform, seed);
  } else if (weights == "luw") {
    g = add_weights(g, weight_scheme::log_uniform, seed);
  } else if (weights != "none") {
    throw std::invalid_argument("unknown --weights '" + weights + "'");
  }
  return g;
}

int cmd_generate(const options& opt) {
  const std::string out = opt.get_string("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out=FILE is required\n");
    return 2;
  }
  wall_timer t;
  if (opt.get_bool("out-of-core", false)) {
    // Stream RMAT edges straight through the external sorter: never holds
    // the edge set in memory (O(V) degree array only).
    const std::string type = opt.get_string("type", "rmat-a");
    if (type != "rmat-a" && type != "rmat-b") {
      std::fprintf(stderr, "generate: --out-of-core supports rmat types\n");
      return 2;
    }
    const auto scale = static_cast<unsigned>(opt.get_int("scale", 16));
    const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 42));
    rmat_params p = type == "rmat-a" ? rmat_a(scale, seed) : rmat_b(scale, seed);
    p.edge_factor = static_cast<unsigned>(opt.get_int("edge-factor", 16));
    sem::ooc_build_options bopt;
    bopt.memory_budget_bytes =
        static_cast<std::uint64_t>(opt.get_int("memory-mb", 64)) << 20;
    bopt.symmetrize = opt.get_bool("undirected", false);
    sem::ooc_graph_builder<vertex32> builder(p.num_vertices(), out, bopt);
    for (std::uint64_t i = 0; i < p.num_edges(); ++i) {
      const auto e = rmat_edge<vertex32>(p, i);
      builder.add_edge(e.src, e.dst, e.weight);
    }
    const auto stats = builder.finalize();
    std::printf("wrote %s out-of-core: %llu edges in, %llu out, %llu sort "
                "runs, %llu MiB spilled (%.2fs)\n",
                out.c_str(),
                static_cast<unsigned long long>(stats.input_edges),
                static_cast<unsigned long long>(stats.output_edges),
                static_cast<unsigned long long>(stats.sort_runs),
                static_cast<unsigned long long>(stats.spilled_bytes >> 20),
                t.elapsed_seconds());
    return 0;
  }
  const csr32 g = generate_graph(opt);
  write_graph(out, g);
  std::printf("wrote %s: %llu vertices, %llu edges%s (%.2fs)\n", out.c_str(),
              static_cast<unsigned long long>(g.num_vertices()),
              static_cast<unsigned long long>(g.num_edges()),
              g.is_weighted() ? ", weighted" : "", t.elapsed_seconds());
  return 0;
}

int cmd_import(const options& opt) {
  if (opt.positional().size() < 2) return usage();
  const std::string out = opt.get_string("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "import: --out=FILE is required\n");
    return 2;
  }
  text_io_stats stats;
  auto edges = read_edge_list(opt.positional()[1], &stats);
  const std::uint64_t n = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(opt.get_int("vertices", 0)),
      stats.edges > 0 ? stats.max_vertex_id + 1 : 0);
  build_options bopt;
  bopt.symmetrize = opt.get_bool("undirected", false);
  const csr32 g = build_csr<vertex32>(n, std::move(edges), bopt);
  write_graph(out, g);
  std::printf("imported %s: %llu vertices, %llu edges%s -> %s\n",
              opt.positional()[1].c_str(),
              static_cast<unsigned long long>(g.num_vertices()),
              static_cast<unsigned long long>(g.num_edges()),
              g.is_weighted() ? " (weighted)" : "", out.c_str());
  return 0;
}

int cmd_export(const options& opt) {
  if (opt.positional().size() < 2) return usage();
  const std::string out = opt.get_string("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "export: --out=FILE is required\n");
    return 2;
  }
  const csr32 g = read_graph32(opt.positional()[1]);
  write_edge_list(out, g);
  std::printf("exported %llu edges to %s\n",
              static_cast<unsigned long long>(g.num_edges()), out.c_str());
  return 0;
}

int cmd_info(const options& opt) {
  if (opt.positional().size() < 2) return usage();
  const std::string path = opt.positional()[1];
  const agt_header h = read_graph_header(path);
  std::printf("file        : %s\n", path.c_str());
  std::printf("vertices    : %s\n", fmt_count(h.num_vertices).c_str());
  std::printf("edges       : %s\n", fmt_count(h.num_edges).c_str());
  std::printf("weighted    : %s\n", h.weighted() ? "yes" : "no");
  std::printf("id width    : %s-bit\n", h.wide_ids() ? "64" : "32");
  const csr32 g = read_graph32_with_reverse(path);
  std::printf("reverse file: %s\n", g.has_reverse() ? "yes (.rev)" : "no");
  const degree_summary s = compute_degree_summary(g);
  std::printf("out-degree  : %s\n", s.stats.to_string().c_str());
  std::printf("max degree  : %s\n", fmt_count(s.max_degree).c_str());
  std::printf("isolated    : %s\n", fmt_count(s.isolated).c_str());
  std::printf("top-1%% edge share: %.1f%%\n",
              100.0 * s.top_fraction_edge_share);
  // In-degree distribution (satellite of the reverse-view work): same mean
  // as out (same edge count), but max and skew diverge on directed graphs,
  // and the bottom-up sweep cost of --hybrid depends on exactly this shape.
  const degree_summary si = compute_in_degree_summary(g);
  std::printf("in-degree   : %s\n", si.stats.to_string().c_str());
  std::printf("max in-deg  : %s\n", fmt_count(si.max_degree).c_str());
  std::printf("in-isolated : %s\n", fmt_count(si.isolated).c_str());
  std::printf("top-1%% in-edge share: %.1f%%\n",
              100.0 * si.top_fraction_edge_share);
  std::printf("symmetric   : %s\n", is_symmetric(g) ? "yes" : "no");
  std::printf("out-degree histogram:\n%s", s.histogram.to_string().c_str());
  std::printf("in-degree histogram:\n%s", si.histogram.to_string().c_str());
  return 0;
}

int cmd_transpose(const options& opt) {
  if (opt.positional().size() < 2) return usage();
  const std::string path = opt.positional()[1];
  const csr32 g = read_graph32(path);
  write_graph(reverse_path_for(path), g.transpose());
  std::printf("wrote reverse edge file %s (%llu vertices, %llu edges)\n",
              reverse_path_for(path).c_str(),
              static_cast<unsigned long long>(g.num_vertices()),
              static_cast<unsigned long long>(g.num_edges()));
  return 0;
}

int cmd_validate(const options& opt) {
  if (opt.positional().size() < 2) return usage();
  const std::string path = opt.positional()[1];
  const agt_header h = read_graph_header(path);
  const csr32 g = read_graph32(path);  // throws on truncation/corruption
  if (g.num_vertices() != h.num_vertices ||
      g.num_edges() != h.num_edges) {
    std::printf("FAIL: header/content mismatch\n");
    return 1;
  }
  for (vertex32 v = 0; v < g.num_vertices(); ++v) {
    for (const vertex32 t : g.neighbors(v)) {
      if (t >= g.num_vertices()) {
        std::printf("FAIL: edge %u->%u out of range\n", v, t);
        return 1;
      }
    }
  }
  std::printf("ok: %s is a valid .agt graph\n", path.c_str());
  return 0;
}

template <typename F>
int run_traversal(const options& opt, const char* name, F&& run) {
  bench::bench_report rep(opt, std::string("agt_tool_") + name);

  std::string path;
  bool sem_mode = opt.get_bool("sem", false);
  std::filesystem::path temp_file;
  if (opt.positional().size() >= 2) {
    path = opt.positional()[1];
  } else {
    // Demo mode: no graph file given. Synthesize an undirected weighted
    // RMAT instance on disk and traverse it semi-externally, so a bare
    // `agt_tool bfs --json out.json --trace out.trace` exercises and
    // reports on every layer: queue, algorithm, and SEM device + cache.
    const auto scale = static_cast<unsigned>(opt.get_int("scale", 14));
    const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 42));
    const csr32 g = add_weights(
        rmat_graph_undirected<vertex32>(rmat_a(scale, seed)),
        weight_scheme::uniform, seed);
    temp_file = std::filesystem::temp_directory_path() /
                ("agt_tool_demo_s" + std::to_string(scale) + ".agt");
    if (opt.get_bool("hybrid", false)) {
      write_graph_with_reverse(temp_file.string(), g);
    } else {
      write_graph(temp_file.string(), g);
    }
    path = temp_file.string();
    sem_mode = true;
    std::printf("no graph file given: synthesized RMAT-A scale %u "
                "(%s vertices, %s edges), traversing semi-externally\n",
                scale, fmt_count(g.num_vertices()).c_str(),
                fmt_count(g.num_edges()).c_str());
  }

  // The demo graph must go away even when the run or report write throws
  // (e.g. --json pointing at an unwritable path).
  struct temp_cleanup {
    const std::filesystem::path& p;
    ~temp_cleanup() {
      if (!p.empty()) {
        std::error_code ec;
        std::filesystem::remove(p, ec);
        std::filesystem::remove(reverse_path_for(p.string()), ec);
      }
    }
  } cleanup{temp_file};

  // One parser for threads / flush-batch / retries / backoff / deadline,
  // shared with the engine API and the bench harnesses
  // (service/traversal_options.hpp). The report attaches to the embedded
  // queue config and the whole options bundle flows to the run lambda, so
  // --deadline-ms / --stall-grace-ms reach the default engine's watchdog.
  traversal_options topt = traversal_options::from_flags(opt, sem_mode);
  rep.attach(topt.queue);

  int rc;
  if (sem_mode) {
    const auto params = sem::device_preset_by_name(
        opt.get_string("device", "intel"),
        opt.get_double("time-scale", 1.0));
    sem::ssd_model dev(params);
    telemetry::io_recorder recorder;
    // Fault-tolerance knobs: a deterministic injector (--inject) plus the
    // retry budget the edge file spends absorbing the transient faults.
    std::unique_ptr<sem::fault_injector> injector;
    const std::string inject_spec = opt.get_string("inject", "");
    if (!inject_spec.empty()) {
      injector = std::make_unique<sem::fault_injector>(
          sem::parse_fault_config(inject_spec));
    }
    if (topt.hybrid && !has_reverse_file(path)) {
      std::fprintf(stderr,
                   "--hybrid with --sem needs a reverse edge file at "
                   "%s; write the graph with agt_tool transpose or the "
                   "out-of-core builder's emit_reverse\n",
                   reverse_path_for(path).c_str());
      return 2;
    }
    // One builder declaration replaces the old five-setter wiring: backend,
    // cache (+ policy), retries, hot-block machinery, reverse view, fault
    // injector, and recorder all land through sem_config (sem_config.hpp).
    // Demo mode enables the cache (the SEM report should show hit/miss/
    // eviction dynamics); explicit --sem keeps the seed default of no cache
    // unless --cache-fraction asks for one.
    sem::sem_config scfg = sem::sem_config::from_options(topt, path);
    scfg.with_device(&dev);
    if (topt.cache_fraction < 0.0) {
      scfg.with_cache_fraction(temp_file.empty() ? 0.0 : 0.5);
    }
    if (injector != nullptr) scfg.with_fault_injector(injector.get());
    // The recorder is what carries io.retries/io.gave_up into the report
    // and the console summary, so injected runs always attach it.
    if (rep.enabled() || injector != nullptr) {
      scfg.with_io_recorder(&recorder);
    }
    sem::sem_bundle<vertex32> bundle;
    {
      telemetry::phase_timer ph(rep.trace(), "load-graph", &rep.metrics());
      bundle = scfg.open<vertex32>();
    }
    // --ordering=hot: point the queue at the bundle's pressure-fed advisor.
    bundle.wire_queue(topt.queue);
    auto* g = bundle.graph.get();
    if (rep.enabled()) {
      rep.sampler().add_probe("ssd.inflight", [&dev] {
        return static_cast<double>(dev.inflight());
      });
      if (bundle.pressure != nullptr) {
        rep.sampler().add_probe("sem.pending_visitors", [&bundle] {
          return static_cast<double>(bundle.pressure->total_pending());
        });
      }
    }
    rc = run(*g, topt, rep);
    // Outstanding readahead still charges the simulated device; settle it
    // before the counters are read so wasted prefetch shows up as traffic
    // instead of vanishing with the worker thread.
    if (bundle.prefetch != nullptr) bundle.prefetch->drain();
    const auto c = dev.counters();
    std::printf("device: %s reads (%s MiB)\n", fmt_count(c.reads).c_str(),
                fmt_count(c.read_bytes >> 20).c_str());
    const auto bc = g->backend().counters();
    std::printf("io backend: %s — %s requests in %s syscall batches "
                "(%s coalesced, peak %s in flight)\n",
                g->backend().name(), fmt_count(bc.requests).c_str(),
                fmt_count(bc.batches).c_str(),
                fmt_count(bc.coalesced_ranges).c_str(),
                fmt_count(bc.inflight_peak).c_str());
    if (bundle.cache != nullptr) {
      std::printf("cache: %.1f%% hit rate, %s evictions (%s policy)\n",
                  100.0 * bundle.cache->counters().hit_rate(),
                  fmt_count(bundle.cache->counters().evictions).c_str(),
                  bundle.cache->policy_name());
    }
    if (bundle.pressure != nullptr) {
      std::printf("pressure: %s visitor enqueues, %s completions, %s still "
                  "pending\n",
                  fmt_count(bundle.pressure->total_increments()).c_str(),
                  fmt_count(bundle.pressure->total_decrements()).c_str(),
                  fmt_count(bundle.pressure->total_pending()).c_str());
    }
    if (bundle.prefetch != nullptr) {
      const auto pf = bundle.prefetch->stats();
      std::printf("prefetch: %s requested, %s issued, %s stale, %s dropped, "
                  "%s evicted unused\n",
                  fmt_count(pf.requested).c_str(),
                  fmt_count(pf.issued).c_str(), fmt_count(pf.stale).c_str(),
                  fmt_count(pf.dropped).c_str(),
                  fmt_count(bundle.cache->counters().prefetch_wasted).c_str());
    }
    const auto io = recorder.snapshot();
    if (injector != nullptr) {
      const auto fc = injector->counters();
      std::printf("faults: %s injected over %s reads (%s short, %s "
                  "delayed, %s stalled); %s retries, %s gave up\n",
                  fmt_count(fc.errors).c_str(), fmt_count(fc.ops).c_str(),
                  fmt_count(fc.shorts).c_str(), fmt_count(fc.delays).c_str(),
                  fmt_count(fc.stalls).c_str(),
                  fmt_count(io.retries).c_str(),
                  fmt_count(io.gave_up).c_str());
    }
    if (rep.enabled()) {
      rep.metrics().get_counter("io.retries").add(0, io.retries);
      rep.metrics().get_counter("io.gave_up").add(0, io.gave_up);
      rep.metrics().get_counter("io.batches").add(0, io.batches);
      rep.metrics()
          .get_counter("io.coalesced_ranges")
          .add(0, io.coalesced_ranges);
      rep.metrics().get_counter("io.inflight_peak").add(0, io.inflight_peak);
      if (bundle.cache != nullptr) {
        rep.metrics()
            .get_counter("cache.policy_rejects")
            .add(0, bundle.cache->counters().policy_rejects);
      }
      if (bundle.prefetch != nullptr) {
        rep.metrics()
            .get_counter("sem.prefetch.issued")
            .add(0, bundle.prefetch->stats().issued);
        rep.metrics()
            .get_counter("sem.prefetch.wasted")
            .add(0, bundle.cache->counters().prefetch_wasted);
      }
    }
    if (rep.json_enabled()) {
      json_value& s = rep.section("sem");
      s.set("device", params.name);
      s.set("time_scale", params.time_scale);
      s.set("ssd", bench::to_json(c));
      json_value bj = json_value::object();
      bj.set("name", std::string(g->backend().name()));
      bj.set("batch", static_cast<std::uint64_t>(topt.io_batch));
      bj.set("requests", bc.requests);
      bj.set("batches", bc.batches);
      bj.set("bytes_issued", bc.bytes_issued);
      bj.set("coalesced_ranges", bc.coalesced_ranges);
      bj.set("split_batches", bc.split_batches);
      bj.set("inflight_peak", bc.inflight_peak);
      s.set("backend", std::move(bj));
      if (bundle.cache != nullptr) {
        json_value cj = bench::to_json(bundle.cache->counters());
        cj.set("policy", std::string(bundle.cache->policy_name()));
        s.set("cache", std::move(cj));
      }
      if (bundle.pressure != nullptr) {
        s.set("pressure", bench::to_json(*bundle.pressure));
      }
      if (bundle.prefetch != nullptr) {
        s.set("prefetch", bench::to_json(bundle.prefetch->stats(),
                                         bundle.cache->counters()));
      }
      // Bytes of device traffic per completed visit — the hot-block
      // scheduling objective; the run lambda already reported visits into
      // the algorithm section.
      if (const json_value* visits = rep.section("algorithm").find("visits");
          visits != nullptr && visits->as_int() > 0) {
        s.set("bytes_per_visit",
              static_cast<double>(c.read_bytes) /
                  static_cast<double>(visits->as_int()));
      }
      s.set("io", telemetry::to_json(io));
      if (injector != nullptr) {
        const auto fc = injector->counters();
        json_value fj = json_value::object();
        fj.set("spec", inject_spec);
        fj.set("ops", fc.ops);
        fj.set("errors", fc.errors);
        fj.set("shorts", fc.shorts);
        fj.set("delays", fc.delays);
        fj.set("stalls", fc.stalls);
        fj.set("range_hits", fc.range_hits);
        s.set("faults", std::move(fj));
      }
    }
  } else {
    std::unique_ptr<csr32> g;
    {
      telemetry::phase_timer ph(rep.trace(), "load-graph", &rep.metrics());
      // Adopts the on-disk reverse view when a .rev companion exists;
      // --hybrid without one transposes in memory.
      g = std::make_unique<csr32>(read_graph32_with_reverse(path));
      if (topt.hybrid && !g->has_reverse()) g->ensure_reverse();
    }
    rc = run(*g, topt, rep);
  }
  rep.finish();
  return rc;
}

/// Fills the "queue" and "algorithm" report sections shared by every
/// traversal subcommand; the caller appends algorithm-specific fields to
/// the returned algorithm section.
template <typename Result>
telemetry::json_value* report_traversal(bench::bench_report& rep,
                                        const char* algo, const Result& r) {
  if (!rep.json_enabled()) return nullptr;
  rep.section("queue") = bench::to_json(r.stats);
  json_value& alg = rep.section("algorithm");
  const auto w = r.work();
  alg.set("name", algo);
  alg.set("visits", w.visits);
  alg.set("pushes", w.pushes);
  alg.set("updates", w.updates);
  alg.set("relaxed_vertices", w.relaxed_vertices);
  alg.set("wasted_visits", w.wasted_visits);
  alg.set("label_corrections", w.label_corrections);
  return &alg;
}

/// Exit code for an abort: 4 when the service terminated the job (deadline
/// or stall watchdog), 3 for every other abort (cancel, worker failure) —
/// distinct from usage errors (2) and admission rejections (5).
int abort_exit_code(const traversal_aborted& e) {
  return e.reason() == abort_reason::deadline_exceeded ||
                 e.reason() == abort_reason::stalled
             ? 4
             : 3;
}

/// Prints an abort and, when an emergency checkpoint was saved, the resume
/// hint. Returns the exit code (3 or 4, see abort_exit_code).
int report_abort(const char* algo, const traversal_aborted& e,
                 const std::string& checkpoint_path) {
  std::fprintf(stderr, "agt_tool %s: %s\n", algo, e.what());
  if (!checkpoint_path.empty()) {
    std::fprintf(stderr,
                 "emergency checkpoint saved to %s; rerun with "
                 "--resume=%s to finish the traversal\n",
                 checkpoint_path.c_str(), checkpoint_path.c_str());
  }
  return abort_exit_code(e);
}

int cmd_bfs(const options& opt) {
  return run_traversal(opt, "bfs", [&](const auto& g, const auto& cfg,
                                       bench::bench_report& rep) {
    const auto start = static_cast<vertex32>(opt.get_int("start", 0));
    const std::string ckpt = opt.get_string("checkpoint-on-error", "");
    const std::string resume = opt.get_string("resume", "");
    telemetry::phase_timer ph(rep.trace(), "bfs", &rep.metrics());
    try {
      bfs_result<vertex32> r;
      hybrid_extra hex;
      const bool hybrid = opt.get_bool("hybrid", false);
      if (!resume.empty()) {
        const auto cp = load_checkpoint<vertex32>(resume, checkpoint_kind::bfs);
        r = resume_bfs(g, cp, cfg);
        std::printf("resumed BFS from checkpoint %s\n", resume.c_str());
      } else if (hybrid) {
        traversal_options topt(cfg);
        topt.hybrid = true;
        topt.hybrid_alpha = opt.get_double("hybrid-alpha", topt.hybrid_alpha);
        topt.hybrid_beta = opt.get_double("hybrid-beta", topt.hybrid_beta);
        r = hybrid_bfs(g, start, topt, &hex);
        std::printf("hybrid: %s direction switches, %s edges inspected "
                    "over %zu phases\n",
                    fmt_count(hex.direction_switches).c_str(),
                    fmt_count(hex.edge_inspections).c_str(),
                    hex.phases.size());
      } else if (!ckpt.empty()) {
        r = async_bfs_checkpointed(g, start, ckpt, cfg);
      } else {
        r = async_bfs(g, start, cfg);
      }
      std::printf("BFS from %u: reached %s vertices, %s levels, %.3fs\n",
                  start, fmt_count(r.visited_count()).c_str(),
                  fmt_count(r.max_level()).c_str(), r.stats.elapsed_seconds);
      if (auto* alg = report_traversal(rep, "bfs", r)) {
        alg->set("start", static_cast<std::uint64_t>(start));
        alg->set("reached", r.visited_count());
        alg->set("max_level", r.max_level());
        if (hybrid) alg->set("hybrid", bench::to_json(hex));
      }
      return 0;
    } catch (const traversal_aborted& e) {
      return report_abort("bfs", e, ckpt);
    }
  });
}

int cmd_sssp(const options& opt) {
  return run_traversal(opt, "sssp", [&](const auto& g, const auto& cfg,
                                        bench::bench_report& rep) {
    const auto start = static_cast<vertex32>(opt.get_int("start", 0));
    const std::string ckpt = opt.get_string("checkpoint-on-error", "");
    const std::string resume = opt.get_string("resume", "");
    telemetry::phase_timer ph(rep.trace(), "sssp", &rep.metrics());
    try {
      sssp_result<vertex32> r;
      if (!resume.empty()) {
        const auto cp =
            load_checkpoint<vertex32>(resume, checkpoint_kind::sssp);
        r = resume_sssp(g, cp, cfg);
        std::printf("resumed SSSP from checkpoint %s\n", resume.c_str());
      } else if (!ckpt.empty()) {
        r = async_sssp_checkpointed(g, start, ckpt, cfg);
      } else {
        r = async_sssp(g, start, cfg);
      }
      std::printf("SSSP from %u: reached %s vertices, %s corrections, %.3fs\n",
                  start, fmt_count(r.visited_count()).c_str(),
                  fmt_count(r.updates).c_str(), r.stats.elapsed_seconds);
      if (auto* alg = report_traversal(rep, "sssp", r)) {
        alg->set("start", static_cast<std::uint64_t>(start));
        alg->set("reached", r.visited_count());
      }
      return 0;
    } catch (const traversal_aborted& e) {
      return report_abort("sssp", e, ckpt);
    }
  });
}

int cmd_cc(const options& opt) {
  return run_traversal(opt, "cc", [&](const auto& g, const auto& cfg,
                                      bench::bench_report& rep) {
    telemetry::phase_timer ph(rep.trace(), "cc", &rep.metrics());
    try {
      cc_result<vertex32> r;
      hybrid_extra hex;
      const bool hybrid = opt.get_bool("hybrid", false);
      if (hybrid) {
        traversal_options topt(cfg);
        topt.hybrid = true;
        topt.hybrid_alpha = opt.get_double("hybrid-alpha", topt.hybrid_alpha);
        topt.hybrid_beta = opt.get_double("hybrid-beta", topt.hybrid_beta);
        r = hybrid_cc(g, topt, &hex);
        std::printf("hybrid: %s direction switches, %s edges inspected "
                    "over %zu phases\n",
                    fmt_count(hex.direction_switches).c_str(),
                    fmt_count(hex.edge_inspections).c_str(),
                    hex.phases.size());
      } else {
        r = async_cc(g, cfg);
      }
      std::printf("CC: %s components, largest %s vertices, %.3fs\n",
                  fmt_count(r.num_components()).c_str(),
                  fmt_count(r.largest_component_size()).c_str(),
                  r.stats.elapsed_seconds);
      if (auto* alg = report_traversal(rep, "cc", r)) {
        alg->set("components", r.num_components());
        alg->set("largest_component", r.largest_component_size());
        if (hybrid) alg->set("hybrid", bench::to_json(hex));
      }
      return 0;
    } catch (const traversal_aborted& e) {
      return report_abort("cc", e, std::string());
    }
  });
}

int cmd_pagerank(const options& opt) {
  return run_traversal(opt, "pagerank", [&](const auto& g, const auto& cfg,
                                            bench::bench_report& rep) {
    telemetry::phase_timer ph(rep.trace(), "pagerank", &rep.metrics());
    pagerank_options popt;
    popt.alpha = opt.get_double("alpha", 0.85);
    popt.tolerance = opt.get_double("tolerance", 1e-6);
    const auto r = async_pagerank(g, popt, cfg);
    std::printf("PageRank: total %.6f, %s flushes, %.3fs\n", r.total_rank(),
                fmt_count(r.flushes).c_str(), r.stats.elapsed_seconds);
    std::vector<std::size_t> order(r.rank.size());
    std::iota(order.begin(), order.end(), 0);
    const auto top = std::min<std::size_t>(
        static_cast<std::size_t>(opt.get_int("top", 10)), order.size());
    std::partial_sort(order.begin(), order.begin() + top, order.end(),
                      [&](std::size_t a, std::size_t b) {
                        return r.rank[a] > r.rank[b];
                      });
    for (std::size_t i = 0; i < top; ++i) {
      std::printf("  #%zu vertex %zu rank %.6g\n", i + 1, order[i],
                  r.rank[order[i]]);
    }
    if (rep.json_enabled()) {
      rep.section("queue") = bench::to_json(r.stats);
      json_value& alg = rep.section("algorithm");
      alg.set("name", "pagerank");
      alg.set("total_rank", r.total_rank());
      alg.set("flushes", r.flushes);
    }
    return 0;
  });
}

int cmd_metrics(const options& opt) {
  if (opt.positional().size() < 2) return usage();
  const csr32 g = read_graph32(opt.positional()[1]);
  const traversal_options cfg = traversal_options::from_flags(opt);
  const degree_summary s = compute_degree_summary(g);
  std::printf("degree          : %s\n", s.stats.to_string().c_str());
  std::printf("top-1%% edges    : %.1f%%\n",
              100.0 * s.top_fraction_edge_share);
  const auto diam = estimate_diameter(
      g, static_cast<unsigned>(opt.get_int("sweeps", 2)),
      static_cast<std::uint64_t>(opt.get_int("seed", 1)), cfg);
  std::printf("diameter        : >= %llu (%llu double sweeps)\n",
              static_cast<unsigned long long>(diam.lower_bound),
              static_cast<unsigned long long>(diam.sweeps));
  const double apl = average_path_length_sampled(
      g, static_cast<unsigned>(opt.get_int("samples", 3)), 7, cfg);
  std::printf("avg path length : %.2f (sampled)\n", apl);
  std::printf("symmetric       : %s\n", is_symmetric(g) ? "yes" : "no");
  return 0;
}

int cmd_kcore(const options& opt) {
  return run_traversal(opt, "kcore", [&](const auto& g, const auto& cfg,
                                         bench::bench_report& rep) {
    telemetry::phase_timer ph(rep.trace(), "kcore", &rep.metrics());
    const auto r = async_kcore(g, cfg);
    std::printf("k-core: max coreness %u, %s bound updates, %.3fs\n",
                r.max_core(), fmt_count(r.updates).c_str(),
                r.stats.elapsed_seconds);
    if (rep.json_enabled()) {
      rep.section("queue") = bench::to_json(r.stats);
      json_value& alg = rep.section("algorithm");
      alg.set("name", "kcore");
      alg.set("max_core", static_cast<std::uint64_t>(r.max_core()));
      alg.set("updates", r.updates);
    }
    return 0;
  });
}

/// Parses a delta file for `agt_tool update` (docs/dynamic_graphs.md):
/// one op per line, `+ u v [w]` inserts and `- u v` deletes, `#` comments,
/// blank lines separating batches (each batch becomes one overlay epoch).
/// --undirected mirrors every op in both directions (the symmetric-delta
/// precondition of incremental CC). Throws std::invalid_argument with the
/// offending line number on a malformed op.
std::vector<delta_batch<vertex32>> parse_delta_file(const std::string& path,
                                                    bool undirected) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open delta file " + path);
  std::vector<delta_batch<vertex32>> batches;
  delta_batch<vertex32> cur;
  std::string line;
  std::size_t lineno = 0;
  const auto flush = [&] {
    if (!cur.empty()) {
      batches.push_back(std::move(cur));
      cur = delta_batch<vertex32>{};
    }
  };
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string op;
    if (!(ls >> op)) {  // blank line: batch boundary
      flush();
      continue;
    }
    if (op[0] == '#') continue;
    unsigned long long u = 0, v = 0;
    if ((op != "+" && op != "-") || !(ls >> u >> v)) {
      throw std::invalid_argument(
          path + ":" + std::to_string(lineno) +
          ": expected '+ u v [w]' or '- u v', got '" + line + "'");
    }
    const auto su = static_cast<vertex32>(u);
    const auto sv = static_cast<vertex32>(v);
    if (op == "+") {
      unsigned long long w = 1;
      ls >> w;
      if (undirected) {
        cur.insert_undirected(su, sv, static_cast<weight_t>(w));
      } else {
        cur.insert(su, sv, static_cast<weight_t>(w));
      }
    } else if (undirected) {
      cur.erase_undirected(su, sv);
    } else {
      cur.erase(su, sv);
    }
  }
  flush();
  return batches;
}

/// The storage-generic body of `agt_tool update`: applies the parsed
/// batches as overlay epochs, optionally differentially verifying each one
/// (--verify: incremental repair vs full recompute over the same pin), and
/// optionally compacting the head epoch to a clean .agt (+.rev) through
/// the out-of-core builder. A failed compaction (e.g. injected SEM faults)
/// must leave no partial output and the pinned epoch readable — both are
/// demonstrated, and surface as exit 3.
template <typename Graph>
int run_update(const options& opt, const Graph& g, traversal_options& topt,
               bench::bench_report& rep,
               const std::vector<delta_batch<vertex32>>& batches,
               sem::fault_injector* injector = nullptr) {
  delta_overlay<Graph> ov(g);
  const bool verify = opt.get_bool("verify", false);
  const std::string algo = opt.get_string("algo", "bfs");
  const auto start = static_cast<vertex32>(opt.get_int("start", 0));
  std::uint64_t delta_inserts = 0, delta_deletes = 0;
  for (const auto& b : batches) {
    delta_inserts += b.inserts.size();
    delta_deletes += b.deletes.size();
  }

  incremental_extra totals;
  wall_timer t;
  int vrc = 0;
  if (verify) {
    // Chained differential: each epoch repairs the previous epoch's
    // repaired labels, then compares against a full recompute over the
    // same pin — a divergence compounds instead of washing out.
    const auto drive = [&](auto prior, auto repair, auto full,
                           auto labels) -> int {
      for (std::size_t i = 0; i < batches.size(); ++i) {
        ov.apply(batches[i]);
        auto view = ov.snapshot();
        incremental_extra ex;
        prior = repair(view, batches[i], std::move(prior), &ex);
        totals.affected += ex.affected;
        totals.reseeded_vertices += ex.reseeded_vertices;
        totals.repair_visits += ex.repair_visits;
        auto recomputed = full(view);
        if (labels(prior) != labels(recomputed)) {
          std::fprintf(stderr,
                       "update: %s labels diverged from recompute at "
                       "epoch %llu\n",
                       algo.c_str(),
                       static_cast<unsigned long long>(ov.epoch()));
          return 1;
        }
      }
      std::printf("verified %zu epoch(s): incremental %s == recompute "
                  "(affected %s, reseeded %s, repair visits %s)\n",
                  batches.size(), algo.c_str(),
                  fmt_count(totals.affected).c_str(),
                  fmt_count(totals.reseeded_vertices).c_str(),
                  fmt_count(totals.repair_visits).c_str());
      return 0;
    };
    auto v0 = ov.snapshot();
    if (algo == "bfs") {
      vrc = drive(
          async_bfs(v0, start, topt),
          [&](auto& view, const auto& b, auto prior, incremental_extra* ex) {
            return incremental_bfs(view, b, std::move(prior), ex, topt);
          },
          [&](auto& view) { return async_bfs(view, start, topt); },
          [](const auto& r) -> const auto& { return r.level; });
    } else if (algo == "sssp") {
      vrc = drive(
          async_sssp(v0, start, topt),
          [&](auto& view, const auto& b, auto prior, incremental_extra* ex) {
            return incremental_sssp(view, b, std::move(prior), ex, topt);
          },
          [&](auto& view) { return async_sssp(view, start, topt); },
          [](const auto& r) -> const auto& { return r.dist; });
    } else if (algo == "cc") {
      vrc = drive(
          async_cc(v0, topt),
          [&](auto& view, const auto& b, auto prior, incremental_extra* ex) {
            return incremental_cc(view, b, std::move(prior), ex, topt);
          },
          [&](auto& view) { return async_cc(view, topt); },
          [](const auto& r) -> const auto& { return r.component; });
    } else {
      std::fprintf(stderr, "update: --algo must be bfs, sssp or cc\n");
      return 2;
    }
  } else {
    for (const auto& b : batches) ov.apply(b);
  }

  const auto c = ov.counters();
  std::printf("applied %zu batch(es): epoch %llu, %s inserts / %s deletes "
              "live, %s patched pairs, %s -> %s edges (%.3fs)\n",
              batches.size(), static_cast<unsigned long long>(ov.epoch()),
              fmt_count(c.live_inserts).c_str(),
              fmt_count(c.live_deletes).c_str(),
              fmt_count(c.patched_pairs).c_str(),
              fmt_count(g.num_edges()).c_str(),
              fmt_count(ov.num_edges()).c_str(), t.elapsed_seconds());

  if (rep.json_enabled()) {
    json_value& s = rep.section("overlay");
    s.set("epoch", ov.epoch());
    s.set("live_inserts", c.live_inserts);
    s.set("live_deletes", c.live_deletes);
    s.set("patched_pairs", c.patched_pairs);
    s.set("overlay_bytes", ov.overlay_bytes());
    if (verify) {
      json_value& inc = rep.section("incremental");
      inc.set("n", static_cast<std::uint64_t>(g.num_vertices()));
      inc.set("base_edges", g.num_edges());
      inc.set("delta_inserts", delta_inserts);
      inc.set("delta_deletes", delta_deletes);
      inc.set("epoch", ov.epoch());
      json_value algos = json_value::object();
      algos.set(algo, bench::to_json(totals));
      inc.set("algos", std::move(algos));
    }
  }
  if (vrc != 0) return vrc;

  if (opt.get_bool("compact", false)) {
    const std::string out = opt.get_string("out", "");
    if (out.empty()) {
      std::fprintf(stderr, "update: --compact requires --out=FILE\n");
      return 2;
    }
    auto view = ov.snapshot();
    // --inject-at=compact scopes device faults to this pass: the injector
    // was constructed disarmed and goes hot only now (a no-op when it was
    // armed from the start).
    if (injector != nullptr) injector->arm();
    try {
      sem::sem_compaction_options copt;
      copt.memory_budget_bytes =
          static_cast<std::uint64_t>(opt.get_int("memory-mb", 64)) << 20;
      wall_timer ct;
      const auto st = sem::compact_to_file(view, out, copt);
      std::printf("compacted epoch %llu -> %s: %s edges, %llu sort runs "
                  "(%.3fs)\n",
                  static_cast<unsigned long long>(st.epoch), out.c_str(),
                  fmt_count(st.edges).c_str(),
                  static_cast<unsigned long long>(st.build.sort_runs),
                  ct.elapsed_seconds());
      if (rep.json_enabled()) {
        json_value& cj = rep.section("compaction");
        cj.set("epoch", st.epoch);
        cj.set("edges", st.edges);
        cj.set("sort_runs", st.build.sort_runs);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "update: compaction failed: %s\n", e.what());
      // The failure contract: no partial output, and the pinned epoch is
      // still fully readable — prove the latter with a complete sweep.
      // Disarm any fault injector first: the question here is the epoch's
      // integrity, not whether the faulty device keeps faulting.
      if (injector != nullptr) injector->disarm();
      std::uint64_t edges = 0;
      for (vertex32 v = 0; v < view.num_vertices(); ++v) {
        view.for_each_out_edge(v, [&](vertex32, weight_t) { ++edges; });
      }
      std::printf("overlay epoch %llu still readable after failed "
                  "compaction: %s edges iterated (expected %s)\n",
                  static_cast<unsigned long long>(view.epoch()),
                  fmt_count(edges).c_str(),
                  fmt_count(view.num_edges()).c_str());
      return edges == view.num_edges() ? 3 : 1;
    }
  }
  return 0;
}

/// `agt_tool update`: applies an edge-delta file to a graph through the
/// delta overlay — epoch per batch, optional differential verification,
/// optional compaction to a clean .agt (docs/dynamic_graphs.md).
int cmd_update(const options& opt) {
  if (opt.positional().size() < 2) return usage();
  const std::string path = opt.positional()[1];
  const std::string delta_path = opt.get_string("delta", "");
  if (delta_path.empty()) {
    std::fprintf(stderr, "update: --delta=FILE is required\n");
    return 2;
  }
  std::vector<delta_batch<vertex32>> batches;
  try {
    batches = parse_delta_file(delta_path, opt.get_bool("undirected", false));
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "update: %s\n", e.what());
    return 2;
  }
  if (batches.empty()) {
    std::fprintf(stderr, "update: %s holds no operations\n",
                 delta_path.c_str());
    return 2;
  }

  const bool sem_mode = opt.get_bool("sem", false);
  bench::bench_report rep(opt, "agt_tool_update");
  traversal_options topt = traversal_options::from_flags(opt, sem_mode);
  rep.attach(topt.queue);

  int rc;
  if (sem_mode) {
    const auto params = sem::device_preset_by_name(
        opt.get_string("device", "intel"), opt.get_double("time-scale", 1.0));
    sem::ssd_model dev(params);
    std::unique_ptr<sem::fault_injector> injector;
    const std::string inject_spec = opt.get_string("inject", "");
    if (!inject_spec.empty()) {
      injector = std::make_unique<sem::fault_injector>(
          sem::parse_fault_config(inject_spec));
      const std::string at = opt.get_string("inject-at", "open");
      if (at == "compact") {
        injector->disarm();  // run_update re-arms for the compaction pass
      } else if (at != "open") {
        std::fprintf(stderr, "update: --inject-at must be open or compact\n");
        return 2;
      }
    }
    sem::sem_config scfg = sem::sem_config::from_options(topt, path);
    scfg.with_device(&dev);
    if (injector != nullptr) scfg.with_fault_injector(injector.get());
    // Deletes repair through in-edges; adopt the on-disk reverse when the
    // .rev companion exists (agt_tool transpose writes one).
    if (has_reverse_file(path)) scfg.with_reverse();
    auto bundle = scfg.open<vertex32>();
    bundle.wire_queue(topt.queue);
    rc = run_update(opt, *bundle.graph, topt, rep, batches, injector.get());
    if (injector != nullptr) {
      const auto fc = injector->counters();
      std::printf("faults: %s injected over %s reads\n",
                  fmt_count(fc.errors).c_str(), fmt_count(fc.ops).c_str());
    }
  } else {
    const csr32 g = read_graph32_with_reverse(path);
    rc = run_update(opt, g, topt, rep, batches);
  }
  rep.finish();
  return rc;
}

/// `agt_tool stats`: runs a short mixed workload (bfs/sssp/cc cycling over
/// --jobs) through one engine and prints the job-scoped telemetry surface —
/// per-job attribution counters, terminal flags, lifecycle latencies, and
/// the engine's lifecycle percentiles (docs/observability.md). The same
/// data lands in the --json report as a schema-v2 "jobs" array.
int cmd_stats(const options& opt) {
  return run_traversal(opt, "stats", [&](const auto& g, const auto& base,
                                         bench::bench_report& rep) {
    const auto jobs =
        std::max<std::size_t>(1, static_cast<std::size_t>(opt.get_int("jobs", 4)));
    const auto start = static_cast<vertex32>(opt.get_int("start", 0));
    // Overload-safety knobs (docs/service_api.md): admission policy, a
    // pending-job bound, a memory budget, plus the per-job deadline /
    // stall-grace / priority already carried by `base` via from_flags.
    engine::config ecfg;
    ecfg.pool_threads = base.queue.num_threads * jobs;
    ecfg.defaults = base;
    ecfg.max_pending_jobs =
        static_cast<std::size_t>(opt.get_int("max-pending", 0));
    const std::string admission = opt.get_string("admission", "block");
    if (!service::parse_admission_policy(admission, ecfg.admission)) {
      throw std::invalid_argument("bad --admission value: " + admission);
    }
    ecfg.admission_timeout_ms = static_cast<std::uint32_t>(
        opt.get_int("admission-timeout-ms", 0));
    ecfg.memory_budget_bytes =
        static_cast<std::uint64_t>(opt.get_int("memory-budget-mb", 0)) << 20;
    engine eng(ecfg);
    const bool mix_priority = opt.get_bool("mix-priority", false);

    telemetry::phase_timer ph(rep.trace(), "stats", &rep.metrics());
    std::vector<std::function<void()>> waits;
    std::size_t rejected_jobs = 0;
    std::exception_ptr last_rejection;
    for (std::size_t j = 0; j < jobs; ++j) {
      const auto s = static_cast<vertex32>(
          (start + j) % std::max<std::uint64_t>(g.num_vertices(), 1));
      traversal_options jopt = base;
      // Under a budget every job declares its share so the guardrail has
      // something to count (docs/service_api.md: estimates are
      // caller-declared).
      if (ecfg.memory_budget_bytes != 0 && jopt.memory_estimate_bytes == 0) {
        jopt.memory_estimate_bytes = g.resident_bytes();
      }
      // --mix-priority cycles high/normal/low so shed admission has a
      // spread of victims to choose from.
      if (mix_priority) jopt.priority = 1 - static_cast<int>(j % 3);
      try {
        switch (j % 3) {
          case 0: {
            auto h = std::make_shared<job<bfs_result<vertex32>>>(
                eng.submit_bfs(g, s, jopt));
            waits.push_back([h] { h->get(); });
            break;
          }
          case 1: {
            auto h = std::make_shared<job<sssp_result<vertex32>>>(
                eng.submit_sssp(g, s, jopt));
            waits.push_back([h] { h->get(); });
            break;
          }
          default: {
            auto h = std::make_shared<job<cc_result<vertex32>>>(
                eng.submit_cc(g, jopt));
            waits.push_back([h] { h->get(); });
            break;
          }
        }
      } catch (const service::admission_rejected& e) {
        std::fprintf(stderr, "job %zu rejected: %s\n", j, e.what());
        ++rejected_jobs;
        last_rejection = std::current_exception();
      }
    }
    // Partial rejection is the workload doing its job; total rejection
    // means nothing ran at all — surface that as exit 5.
    if (rejected_jobs == jobs && last_rejection != nullptr) {
      std::rethrow_exception(last_rejection);
    }
    // Terminated jobs (deadline, stall, shed) surface through the snapshot
    // table below; the stats workload itself keeps going.
    for (auto& w : waits) {
      try {
        w();
      } catch (const traversal_aborted&) {
      }
    }

    // The completed-job ring is the introspection surface: handles may be
    // gone, the snapshots stay.
    const auto recent = eng.recent_jobs();
    const auto ms = [](double seconds) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", seconds * 1e3);
      return std::string(buf);
    };
    text_table table;
    table.header({"job", "kind", "outcome", "prio", "visits", "edges",
                  "io KiB", "retries", "wait ms", "run ms", "total ms"});
    for (const auto& js : recent) {
      table.row({std::to_string(js.job_id), js.label, js.outcome,
                 std::to_string(js.priority), fmt_count(js.visits),
                 fmt_count(js.edge_inspections),
                 fmt_count(js.io_bytes >> 10), fmt_count(js.io_retries),
                 ms(js.queue_wait_seconds), ms(js.run_seconds),
                 ms(js.total_seconds)});
      if (rep.json_enabled()) rep.add_job(bench::to_json(js));
    }
    std::printf("%s\n", table.render().c_str());

    const auto lc = eng.lifecycle();
    const auto buckets = [](const log2_histogram& h) {
      std::vector<std::uint64_t> b(h.num_buckets());
      for (std::size_t i = 0; i < b.size(); ++i) b[i] = h.bucket_count(i);
      return b;
    };
    const auto put = [&](const char* name, const log2_histogram& h) {
      const auto p = telemetry::percentiles_from_log2(buckets(h));
      std::printf("%-14s p50 %.0fus  p95 %.0fus  p99 %.0fus  (%llu jobs)\n",
                  name, p.p50, p.p95, p.p99,
                  static_cast<unsigned long long>(h.total()));
      if (rep.json_enabled()) {
        json_value v = json_value::object();
        v.set("p50", p.p50);
        v.set("p95", p.p95);
        v.set("p99", p.p99);
        rep.section("lifecycle").set(name, std::move(v));
      }
    };
    put("queue_wait_us", lc.queue_wait_us);
    put("run_us", lc.run_us);
    put("total_us", lc.total_us);
    const auto sc = eng.counters();
    std::printf("service: %llu submitted = %llu completed + %llu failed + "
                "%llu cancelled + %llu deadline_exceeded + %llu stalled + "
                "%llu shed + %llu rejected (%llu still active)\n",
                static_cast<unsigned long long>(sc.submitted),
                static_cast<unsigned long long>(sc.completed),
                static_cast<unsigned long long>(sc.failed),
                static_cast<unsigned long long>(sc.cancelled),
                static_cast<unsigned long long>(sc.deadline_exceeded),
                static_cast<unsigned long long>(sc.stalled),
                static_cast<unsigned long long>(sc.shed),
                static_cast<unsigned long long>(sc.rejected),
                static_cast<unsigned long long>(sc.active));
    if (rep.json_enabled()) {
      rep.section("service") = bench::to_json(sc);
    }
    return 0;
  });
}

int cmd_verify_json(const options& opt) {
  if (opt.positional().size() < 2) return usage();
  const std::string path = opt.positional()[1];
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "verify-json: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  if (!telemetry::report::verify_text(buf.str(), &error)) {
    std::printf("FAIL: %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  std::printf("ok: %s conforms to the bench-report schema\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const asyncgt::options opt(argc, argv);
  if (opt.positional().empty()) return usage();
  const std::string& cmd = opt.positional()[0];
  try {
    if (cmd == "generate") return cmd_generate(opt);
    if (cmd == "info") return cmd_info(opt);
    if (cmd == "validate") return cmd_validate(opt);
    if (cmd == "transpose") return cmd_transpose(opt);
    if (cmd == "bfs") return cmd_bfs(opt);
    if (cmd == "sssp") return cmd_sssp(opt);
    if (cmd == "cc") return cmd_cc(opt);
    if (cmd == "pagerank") return cmd_pagerank(opt);
    if (cmd == "kcore") return cmd_kcore(opt);
    if (cmd == "metrics") return cmd_metrics(opt);
    if (cmd == "stats") return cmd_stats(opt);
    if (cmd == "update") return cmd_update(opt);
    if (cmd == "import") return cmd_import(opt);
    if (cmd == "export") return cmd_export(opt);
    if (cmd == "verify-json") return cmd_verify_json(opt);
  } catch (const asyncgt::traversal_aborted& e) {
    // Uncaught aborts from subcommands without their own handler (pagerank,
    // kcore, metrics) still map to the typed exit codes.
    std::fprintf(stderr, "agt_tool %s: %s\n", cmd.c_str(), e.what());
    return abort_exit_code(e);
  } catch (const asyncgt::service::admission_rejected& e) {
    std::fprintf(stderr, "agt_tool %s: %s\n", cmd.c_str(), e.what());
    return 5;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "agt_tool %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
  return usage();
}
