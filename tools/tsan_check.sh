#!/usr/bin/env bash
# Builds the tree under ThreadSanitizer and runs the concurrency-sensitive
# suites: the layered visitor-queue engine (routing / ordering / mailbox /
# termination, including the flush-batch ablation), the asynchronous
# traversals driving it, the failure-containment battery (abort
# broadcast racing delivery/parking, injected-fault soak), and the
# traversal-service battery (pooled gang dispatch, concurrent jobs over one
# shared graph, cancellation racing the pool, per-job attribution
# conservation under concurrent gangs), the overload-safety battery
# (watchdog deadline/stall firing racing completion, admission decisions
# from concurrent submitters, the 4x-oversubscribed mixed-priority mix —
# docs/robustness.md), the differential battery
# (async vs serial labels across storage modes), the I/O-backend battery
# (per-thread coalescing lanes, backend-identity under injected faults),
# and the hybrid-traversal battery (the bottom-up sweeps' range-partitioned
# parallel writes and the frontier estimator's worker-side sampling), and
# the hot-block battery (sharded pressure counters hammered from all
# workers, the two-band hot ordering, pressure-weighted eviction, the
# sem_config bundle wiring, and the prefetch lane racing demand reads —
# docs/hot_blocks.md), and the dynamic-graph battery (delta batches
# applied while pinned readers iterate and async jobs run over old
# epochs, plus the incremental-vs-recompute stream — docs/dynamic_graphs.md).
# Wraps the `tsan` presets in CMakePresets.json so CI and humans run the
# identical configuration:
#
#   tools/tsan_check.sh [-jN]
#
# Exits non-zero on any data race (TSAN_OPTIONS=halt_on_error=1) or test
# failure. tools/tsan.supp mutes the known libstdc++ exception_ptr
# false positive (refcount decrement lives in the uninstrumented .so).
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${1:--j$(nproc)}"

cmake --preset tsan
cmake --build --preset tsan "${JOBS}" --target test_queue test_core test_fault test_service test_overload test_diff test_backend test_telemetry test_sem test_hybrid test_dynamic
ctest --preset tsan
