#!/usr/bin/env bash
# Line-coverage gate for the hot layers (docs/observability.md).
#
# Builds the `coverage` preset (--coverage -O0, build-coverage/), runs the
# unit batteries that exercise the semi-external and queue layers, then
# collects line coverage for src/sem/ and src/queue/ and FAILS if either
# dips under the threshold (default 80% lines). Output is lcov-compatible
# (build-coverage/coverage.info) so genhtml and CI coverage services can
# consume it directly.
#
# Collection prefers gcovr when installed; otherwise it falls back to
# plain `gcov --json-format` plus an embedded aggregator, so the gate runs
# on a bare toolchain image.
#
#   tools/coverage.sh [-jN] [--threshold=PCT]
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$(pwd)"
BUILD="${ROOT}/build-coverage"

JOBS="-j$(nproc)"
THRESHOLD=80
for arg in "$@"; do
  case "${arg}" in
    -j*) JOBS="${arg}" ;;
    --threshold=*) THRESHOLD="${arg#--threshold=}" ;;
    *)
      echo "unknown argument: ${arg}" >&2
      exit 2
      ;;
  esac
done

cmake --preset coverage
cmake --build --preset coverage "${JOBS}" \
  --target test_sem test_queue test_core test_fault test_backend test_diff

# Fresh counters: stale .gcda from a previous run would inflate the numbers.
find "${BUILD}" -name '*.gcda' -delete

for bin in test_sem test_queue test_core test_fault test_backend test_diff; do
  "${BUILD}/tests/${bin}" --gtest_brief=1
done

if command -v gcovr >/dev/null 2>&1; then
  gcovr --root "${ROOT}" --filter 'src/(sem|queue)/' \
    --lcov "${BUILD}/coverage.info" \
    --fail-under-line "${THRESHOLD}" --print-summary "${BUILD}"
  exit 0
fi

# Bare-toolchain fallback: gcov --json-format over every .gcda, aggregated
# into per-file executed/executable line sets, emitted as lcov records.
# (The script arrives on stdin, so it discovers the .gcda files itself.)
THRESHOLD="${THRESHOLD}" ROOT="${ROOT}" BUILD="${BUILD}" python3 - <<'PY'
import json, os, subprocess, sys

root = os.environ["ROOT"]
build = os.environ["BUILD"]
threshold = float(os.environ["THRESHOLD"])
gates = ("src/sem/", "src/queue/")

gcdas = []
for dirpath, _, files in os.walk(build):
    gcdas += [os.path.join(dirpath, f) for f in files if f.endswith(".gcda")]

# file (repo-relative) -> {line -> max hit count}
cover = {}
for gcda in sorted(gcdas):
    # -t: JSON to stdout, nothing written next to the objects.
    out = subprocess.run(["gcov", "-t", "--json-format", gcda],
                         capture_output=True, cwd=build)
    if out.returncode != 0:
        continue
    for doc in out.stdout.splitlines():
        try:
            data = json.loads(doc)
        except json.JSONDecodeError:
            continue
        for f in data.get("files", []):
            path = os.path.normpath(os.path.join(build, f["file"]))
            if not path.startswith(root + os.sep):
                continue
            rel = os.path.relpath(path, root)
            lines = cover.setdefault(rel, {})
            for ln in f.get("lines", []):
                n = ln["line_number"]
                lines[n] = max(lines.get(n, 0), ln["count"])

with open(os.path.join(build, "coverage.info"), "w") as info:
    for rel in sorted(cover):
        lines = cover[rel]
        info.write("TN:\nSF:%s\n" % os.path.join(root, rel))
        for n in sorted(lines):
            info.write("DA:%d,%d\n" % (n, lines[n]))
        hit = sum(1 for c in lines.values() if c > 0)
        info.write("LH:%d\nLF:%d\nend_of_record\n" % (hit, len(lines)))

failed = False
print("%-14s %10s %10s %8s" % ("layer", "lines", "covered", "rate"))
for gate in gates:
    total = hit = 0
    for rel, lines in cover.items():
        if not rel.startswith(gate):
            continue
        total += len(lines)
        hit += sum(1 for c in lines.values() if c > 0)
    rate = 100.0 * hit / total if total else 0.0
    flag = "" if rate >= threshold else "  < %.0f%% FAIL" % threshold
    print("%-14s %10d %10d %7.1f%%%s" % (gate, total, hit, rate, flag))
    if rate < threshold:
        failed = True
print("lcov report: %s" % os.path.join(build, "coverage.info"))
sys.exit(1 if failed else 0)
PY
