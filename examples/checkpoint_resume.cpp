// Example: checkpoint / resume of a semi-external traversal.
//
// Long-running SEM jobs (the paper's biggest rows run for hours) should
// survive crashes. This example runs an SSSP over on-disk storage, saves a
// checkpoint "mid-flight" (simulated by snapshotting a partially erased
// label array), kills the fictional job, reloads the CRC-verified snapshot,
// resumes, and proves the resumed result equals an uninterrupted run.
//
//   ./checkpoint_resume [--scale=12] [--threads=32]
#include <cstdio>
#include <filesystem>
#include <random>

#include "asyncgt.hpp"
#include "baselines/serial_sssp.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace asyncgt;
  const options opt(argc, argv);
  const auto scale = static_cast<unsigned>(opt.get_int("scale", 12));

  visitor_queue_config cfg;
  cfg.num_threads = static_cast<std::size_t>(opt.get_int("threads", 32));
  cfg.secondary_vertex_sort = true;

  // On-disk weighted graph, traversed semi-externally.
  const csr32 g =
      add_weights(rmat_graph<vertex32>(rmat_a(scale)), weight_scheme::uniform,
                  3);
  const auto dir = std::filesystem::temp_directory_path();
  const std::string graph_path = (dir / "ckpt_example.agt").string();
  const std::string ckpt_path = (dir / "ckpt_example.ckpt").string();
  write_graph(graph_path, g);
  sem::ssd_model dev(sem::fusionio_params(/*time_scale=*/0.05));
  sem::sem_csr32 sg(graph_path, &dev);

  // 1. The uninterrupted reference run.
  const auto full = async_sssp(sg, vertex32{0}, cfg);
  std::printf("full run: reached %llu vertices in %.3fs\n",
              static_cast<unsigned long long>(full.visited_count()),
              full.stats.elapsed_seconds);

  // 2. Simulate a crash mid-run: snapshot with ~60%% of the labels lost.
  traversal_checkpoint<vertex32> snap;
  snap.kind = checkpoint_kind::sssp;
  snap.label = full.dist;
  snap.parent = full.parent;
  std::mt19937 rng(7);
  std::uint64_t kept = 0;
  for (std::size_t v = 1; v < snap.label.size(); ++v) {
    if (rng() % 5 < 3) {
      snap.label[v] = infinite_distance<dist_t>;
      snap.parent[v] = invalid_vertex<vertex32>;
    } else if (snap.label[v] != infinite_distance<dist_t>) {
      ++kept;
    }
  }
  save_checkpoint(ckpt_path, snap);
  std::printf("checkpoint: kept %llu finished labels, %llu bytes, CRC "
              "protected\n",
              static_cast<unsigned long long>(kept),
              static_cast<unsigned long long>(
                  std::filesystem::file_size(ckpt_path)));

  // 3. "Restart": load, verify, resume on fresh storage handles.
  const auto loaded =
      load_checkpoint<vertex32>(ckpt_path, checkpoint_kind::sssp);
  sem::ssd_model dev2(sem::fusionio_params(/*time_scale=*/0.05));
  sem::sem_csr32 sg2(graph_path, &dev2);
  const auto resumed = resume_sssp(sg2, loaded, cfg);
  std::printf("resume: %.3fs, %llu corrections\n",
              resumed.stats.elapsed_seconds,
              static_cast<unsigned long long>(resumed.updates));

  const bool same = (resumed.dist == full.dist);
  std::printf("resumed result equals uninterrupted run: %s\n",
              same ? "yes" : "NO");

  std::filesystem::remove(graph_path);
  std::filesystem::remove(ckpt_path);
  return same ? 0 : 1;
}
