// Example: shortest paths on a road-network-like grid.
//
// Scale-free graphs (the paper's focus) have tiny diameters; road networks
// are the opposite regime — large diameter, low degree, limited path
// parallelism. This example runs the asynchronous SSSP on a weighted grid,
// compares it against serial Dijkstra, extracts an actual route via the
// parent array, and prints the traversal statistics that show how graph
// structure limits available parallelism (paper §III-B1).
//
//   ./road_sssp [--width=256] [--height=256] [--threads=16]
#include <cstdio>
#include <vector>

#include "asyncgt.hpp"
#include "baselines/serial_sssp.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace asyncgt;
  const options opt(argc, argv);
  const auto width = static_cast<std::uint64_t>(opt.get_int("width", 256));
  const auto height = static_cast<std::uint64_t>(opt.get_int("height", 256));

  // Grid with log-uniform weights: most roads short, some long highways.
  const csr32 g = add_weights(grid_graph<vertex32>(width, height),
                              weight_scheme::log_uniform, 5);
  std::printf("road grid: %llux%llu (%llu intersections, %llu road "
              "segments)\n",
              static_cast<unsigned long long>(width),
              static_cast<unsigned long long>(height),
              static_cast<unsigned long long>(g.num_vertices()),
              static_cast<unsigned long long>(g.num_edges() / 2));

  visitor_queue_config cfg;
  cfg.num_threads = static_cast<std::size_t>(opt.get_int("threads", 16));
  const vertex32 src = 0;  // top-left corner
  const auto dst = static_cast<vertex32>(width * height - 1);  // bottom-right

  const auto r = async_sssp(g, src, cfg);
  std::printf("async SSSP: %.3fs, %llu label corrections, max queue %llu\n",
              r.stats.elapsed_seconds,
              static_cast<unsigned long long>(r.updates),
              static_cast<unsigned long long>(r.stats.max_queue_length));

  const auto ref = dijkstra_sssp(g, src);
  std::printf("serial Dijkstra: agrees=%s\n",
              r.dist == ref.dist ? "yes" : "NO");

  // Reconstruct the route corner-to-corner from the parent array.
  std::vector<vertex32> route;
  for (vertex32 v = dst; v != src; v = r.parent[v]) {
    route.push_back(v);
    if (route.size() > g.num_vertices()) {
      std::printf("parent array is cyclic!\n");
      return 1;
    }
  }
  route.push_back(src);
  std::printf("route %u -> %u: cost %llu, %zu hops\n", src, dst,
              static_cast<unsigned long long>(r.dist[dst]), route.size() - 1);
  // Print the first few waypoints as (x, y) coordinates.
  std::printf("waypoints: ");
  const std::size_t show = std::min<std::size_t>(route.size(), 8);
  for (std::size_t i = 0; i < show; ++i) {
    const vertex32 v = route[route.size() - 1 - i];
    std::printf("(%llu,%llu) ", static_cast<unsigned long long>(v % width),
                static_cast<unsigned long long>(v / width));
  }
  std::printf("...\n");

  const auto val = validate_distances(g, src, r.dist);
  std::printf("validation: %s\n", val.ok ? "ok" : val.error.c_str());
  return (r.dist == ref.dist && val.ok) ? 0 : 1;
}
