// Example: semi-external traversal of an on-disk graph over simulated flash.
//
// The end-to-end SEM workflow of the paper: build a graph, write it to disk
// in the .agt CSR format, reopen it semi-externally (only the O(V) offset
// index in RAM), and run BFS with heavy thread oversubscription on each of
// the three simulated SSD configurations. Shows how oversubscription turns
// per-read latency into aggregate IOPS.
//
//   ./sem_traversal [--scale=12] [--threads=256] [--time-scale=1.0]
//                   [--device=all] [--keep-file]
#include <cstdio>
#include <filesystem>

#include "asyncgt.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace asyncgt;
  const options opt(argc, argv);
  const auto scale = static_cast<unsigned>(opt.get_int("scale", 12));
  const auto threads = static_cast<std::size_t>(opt.get_int("threads", 256));
  const double time_scale = opt.get_double("time-scale", 1.0);
  const std::string device_arg = opt.get_string("device", "all");

  // 1. Build and persist the graph.
  const csr32 g = rmat_graph<vertex32>(rmat_a(scale));
  const auto path =
      std::filesystem::temp_directory_path() / "asyncgt_example.agt";
  write_graph(path.string(), g);
  std::printf("wrote %llu-vertex graph to %s (%llu MiB on device)\n",
              static_cast<unsigned long long>(g.num_vertices()),
              path.c_str(),
              static_cast<unsigned long long>(
                  std::filesystem::file_size(path) >> 20));

  // 2. Traverse semi-externally on each device model.
  text_table table;
  table.header({"device", "threads", "BFS time (s)", "device reads",
                "achieved IOPS", "reached"});
  bool all_ok = true;
  for (const auto& params : sem::all_device_presets(time_scale)) {
    if (device_arg != "all" && device_arg != params.name) continue;
    sem::ssd_model dev(params);
    sem::sem_csr32 sg(path.string(), &dev);
    std::printf("semi-external: %llu KiB resident (offset index) vs %llu "
                "KiB on %s\n",
                static_cast<unsigned long long>(sg.memory_bytes() >> 10),
                static_cast<unsigned long long>(sg.device_bytes() >> 10),
                params.name.c_str());

    visitor_queue_config cfg;
    cfg.num_threads = threads;
    cfg.secondary_vertex_sort = true;  // SEM locality ordering (paper IV-C)
    const auto r = async_bfs(sg, vertex32{0}, cfg);
    const auto reads = dev.counters().reads;
    table.row({params.name, std::to_string(threads),
               fmt_seconds(r.stats.elapsed_seconds), fmt_count(reads),
               fmt_count(static_cast<std::uint64_t>(
                   static_cast<double>(reads) /
                   std::max(r.stats.elapsed_seconds, 1e-9))),
               fmt_count(r.visited_count())});

    all_ok &= validate_distances(sg, vertex32{0}, r.level, true).ok;
  }
  std::printf("\n%s", table.render().c_str());
  std::printf("validation: %s\n", all_ok ? "ok" : "FAILED");

  if (!opt.get_bool("keep-file", false)) std::filesystem::remove(path);
  return all_ok ? 0 : 1;
}
