// Example: connected-component analysis of a synthetic web crawl.
//
// Mirrors the paper's real-graph CC experiments (ClueWeb09, sk-2005, ...):
// generate a web-like graph with host/community structure, find its
// connected components asynchronously, and report the component-size
// distribution — the giant component plus the long tail of isolated hosts.
//
//   ./webgraph_components [--hosts=500] [--threads=16]
//                         [--isolated-fraction=0.15]
#include <algorithm>
#include <cstdio>
#include <map>

#include "asyncgt.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace asyncgt;
  const options opt(argc, argv);

  webgen_params params;
  params.num_hosts = static_cast<std::uint64_t>(opt.get_int("hosts", 500));
  params.isolated_host_fraction = opt.get_double("isolated-fraction", 0.15);
  params.seed = static_cast<std::uint64_t>(opt.get_int("seed", 7));

  std::printf("generating web graph: %llu hosts...\n",
              static_cast<unsigned long long>(params.num_hosts));
  const csr32 g = webgen_graph<vertex32>(params);
  std::printf("graph: %llu pages, %llu links (symmetric CSR)\n",
              static_cast<unsigned long long>(g.num_vertices()),
              static_cast<unsigned long long>(g.num_edges()));

  visitor_queue_config cfg;
  cfg.num_threads = static_cast<std::size_t>(opt.get_int("threads", 16));
  const auto cc = async_cc(g, cfg);
  std::printf("connected components: %llu (%.3fs, %llu label corrections)\n",
              static_cast<unsigned long long>(cc.num_components()),
              cc.stats.elapsed_seconds,
              static_cast<unsigned long long>(cc.updates));

  // Component size distribution (log2 histogram, like crawl reports).
  std::map<vertex32, std::uint64_t> sizes;
  for (const vertex32 c : cc.component) ++sizes[c];
  log2_histogram hist;
  std::uint64_t largest = 0;
  for (const auto& [root, size] : sizes) {
    hist.add(size);
    largest = std::max(largest, size);
  }
  std::printf("\ncomponent size distribution (size range: count):\n%s",
              hist.to_string().c_str());
  std::printf("\ngiant component: %llu pages (%.1f%% of graph)\n",
              static_cast<unsigned long long>(largest),
              100.0 * static_cast<double>(largest) /
                  static_cast<double>(g.num_vertices()));

  const auto v = validate_components(g, cc.component);
  if (!v.ok) {
    std::printf("VALIDATION FAILED: %s\n", v.error.c_str());
    return 1;
  }
  std::printf("validation: ok\n");
  return 0;
}
