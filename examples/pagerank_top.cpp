// Example: asynchronous PageRank + k-core on a synthetic web graph.
//
// Shows the two extension algorithms built on the same visitor-queue
// machinery as the paper's traversals: rank the pages of a generated web
// crawl, cross-check against synchronous power iteration, and report the
// top pages with their coreness (hub pages should be both high-rank and
// high-core).
//
//   ./pagerank_top [--hosts=300] [--threads=16] [--top=10] [--alpha=0.85]
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "asyncgt.hpp"
#include "baselines/power_iteration.hpp"
#include "baselines/serial_kcore.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace asyncgt;
  const options opt(argc, argv);

  webgen_params params;
  params.num_hosts = static_cast<std::uint64_t>(opt.get_int("hosts", 150));
  params.seed = static_cast<std::uint64_t>(opt.get_int("seed", 9));
  const csr32 g = webgen_graph<vertex32>(params);
  std::printf("web graph: %llu pages, %llu links\n",
              static_cast<unsigned long long>(g.num_vertices()),
              static_cast<unsigned long long>(g.num_edges()));

  visitor_queue_config cfg;
  cfg.num_threads = static_cast<std::size_t>(opt.get_int("threads", 16));

  pagerank_options pr_opt;
  pr_opt.alpha = opt.get_double("alpha", 0.85);
  pr_opt.tolerance = opt.get_double("tolerance", 1e-6);
  const auto pr = async_pagerank(g, pr_opt, cfg);
  std::printf("async PageRank: %.3fs, %llu flushes, total rank %.6f\n",
              pr.stats.elapsed_seconds,
              static_cast<unsigned long long>(pr.flushes), pr.total_rank());

  // Cross-check against the synchronous baseline.
  const auto ref = power_iteration_pagerank(g, pr_opt.alpha, 1e-12);
  double l1 = 0;
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    l1 += std::abs(pr.rank[v] - ref.rank[v]);
  }
  std::printf("power iteration: %llu iterations, L1 difference %.2e\n",
              static_cast<unsigned long long>(ref.iterations), l1);

  const auto kc = async_kcore(g, cfg);
  std::printf("async k-core: max coreness %u, %.3fs\n", kc.max_core(),
              kc.stats.elapsed_seconds);

  // Top pages by rank.
  std::vector<vertex32> order(g.num_vertices());
  std::iota(order.begin(), order.end(), 0u);
  const auto top = static_cast<std::size_t>(opt.get_int("top", 10));
  std::partial_sort(order.begin(),
                    order.begin() + std::min(top, order.size()), order.end(),
                    [&](vertex32 a, vertex32 b) {
                      return pr.rank[a] > pr.rank[b];
                    });
  text_table table;
  table.header({"page", "rank", "degree", "coreness"});
  for (std::size_t i = 0; i < std::min(top, order.size()); ++i) {
    const vertex32 v = order[i];
    table.row({std::to_string(v), std::to_string(pr.rank[v]),
               fmt_count(g.out_degree(v)), std::to_string(kc.core[v])});
  }
  std::printf("\ntop pages by PageRank:\n%s", table.render().c_str());

  const double bound = pr_opt.tolerance *
                        static_cast<double>(g.num_vertices()) /
                        (1.0 - pr_opt.alpha);
  return l1 < bound ? 0 : 1;
}
