// Quickstart: generate a small scale-free graph, run the three asynchronous
// traversals, and print a summary.
//
//   ./quickstart [--scale=14] [--threads=8]
#include <cstdio>

#include "asyncgt.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace asyncgt;
  const options opt(argc, argv);
  const auto scale = static_cast<unsigned>(opt.get_int("scale", 14));
  const auto threads = static_cast<std::size_t>(opt.get_int("threads", 8));

  // 1. Generate an RMAT-A graph (the paper's moderately-skewed synthetic
  //    workload): 2^scale vertices, average out-degree 16.
  const rmat_params params = rmat_a(scale);
  const csr32 directed = rmat_graph<vertex32>(params);
  const csr32 undirected = rmat_graph_undirected<vertex32>(params);
  std::printf("graph: %llu vertices, %llu directed edges\n",
              static_cast<unsigned long long>(directed.num_vertices()),
              static_cast<unsigned long long>(directed.num_edges()));

  visitor_queue_config cfg;
  cfg.num_threads = threads;

  // 2. Asynchronous BFS from vertex 0.
  const auto bfs = async_bfs(directed, vertex32{0}, cfg);
  std::printf("BFS : reached %llu vertices, %llu levels, %.3fs\n",
              static_cast<unsigned long long>(bfs.visited_count()),
              static_cast<unsigned long long>(bfs.max_level()),
              bfs.stats.elapsed_seconds);

  // 3. Asynchronous SSSP over uniform random weights.
  const csr32 weighted = add_weights(directed, weight_scheme::uniform, 1);
  const auto sssp = async_sssp(weighted, vertex32{0}, cfg);
  std::printf("SSSP: reached %llu vertices, %llu relaxations, %.3fs\n",
              static_cast<unsigned long long>(sssp.visited_count()),
              static_cast<unsigned long long>(sssp.updates),
              sssp.stats.elapsed_seconds);

  // 4. Asynchronous Connected Components on the undirected version.
  const auto cc = async_cc(undirected, cfg);
  std::printf("CC  : %llu components, largest %llu vertices, %.3fs\n",
              static_cast<unsigned long long>(cc.num_components()),
              static_cast<unsigned long long>(cc.largest_component_size()),
              cc.stats.elapsed_seconds);

  // 5. Everything above is independently checkable.
  const auto v1 = validate_distances(directed, vertex32{0}, bfs.level, true);
  const auto v2 = validate_distances(weighted, vertex32{0}, sssp.dist);
  const auto v3 = validate_components(undirected, cc.component);
  std::printf("validation: bfs=%s sssp=%s cc=%s\n", v1.ok ? "ok" : "FAIL",
              v2.ok ? "ok" : "FAIL", v3.ok ? "ok" : "FAIL");
  return (v1.ok && v2.ok && v3.ok) ? 0 : 1;
}
